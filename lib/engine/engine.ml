(* Compiled evaluation engine.

   The backtracking evaluator in Cq.Eval used to run directly over the
   string-keyed representation: Map.Make(String) environments, candidate fact
   lists rebuilt for every remaining atom at every node, and selectivity
   ranking by List.compare_lengths over the rebuilt lists. This module
   compiles the query once instead — values interned to dense ints, facts as
   immutable int-array tuples, variables as slots of a flat int-array
   environment, atoms as per-position check/slot instructions — and then runs
   a tight matching loop that allocates nothing on the happy path. Candidate
   ranking reads stored counts from the compiled (rel, pos, value) index, so
   the dynamic fewest-candidates atom order of the old evaluator is preserved
   at O(arity) per remaining atom instead of a list materialization.

   Mappings cross the boundary exactly twice: once at compile time (init and
   constants are interned) and once per reported solution (slots are read
   back into a Mapping.t). Everything in between is int-on-int. *)

open Relational

(* ------------------------------------------------------------------ *)
(* Compiled databases                                                   *)
(* ------------------------------------------------------------------ *)

module Db = struct
  (* Counted cells are growable: [rows] is a capacity array whose live prefix
     is [rows.(0 .. count-1)]. Growability is what makes Database.add cheap:
     new facts append into the existing cells instead of invalidating the
     whole compiled form. Every consumer iterates the prefix, never
     [Array.length rows]. *)
  type cell = {
    mutable count : int;
    mutable rows : int array;    (* indices into [tuples]; capacity >= count *)
  }

  type rel = {
    name : string;
    arity : int;
    mutable tuples : Tuple.t array;  (* capacity array; live prefix [nrows] *)
    mutable nrows : int;
    index : (int, cell) Hashtbl.t array;  (* per position: value id -> cell *)
    dcounts : int array;   (* per position: number of distinct value ids *)
    ranges : (int * int) array;
        (* per position: (min, max) stored value id; (0, -1) when empty *)
  }

  (* compiled plan cores are cached here keyed by atom list; the payload
     type is defined after the plan types below, hence the extensible
     variant (same trick as Database.cache) *)
  type plan_store = ..
  type plan_store += No_plans

  (* learned calibrations are cached separately from plan cores: unlike
     cores they are NOT discarded on [extend] — each entry carries the
     stats epoch it was learned at and is lazily evicted when looked up
     under a newer epoch (the E024 discipline) *)
  type adapt_store = ..
  type adapt_store += No_adapts

  type t = {
    pool : Value.t Interner.t;
    rels : (string * int, rel) Hashtbl.t;  (* keyed by (name, arity) *)
    mutable db_version : int;
    mutable db_deletions : int;
        (* the Database.deletions epoch the store was last synced at; the
           store only knows how to ingest insertions, so of_database rebuilds
           instead of extending when the epoch moved *)
    mutable plans : plan_store;
    mutable adapts : adapt_store;
  }

  let find_rel c name arity = Hashtbl.find_opt c.rels (name, arity)

  let cell_push cell row =
    let cap = Array.length cell.rows in
    if cell.count = cap then begin
      let rows = Array.make (max 4 (2 * cap)) 0 in
      Array.blit cell.rows 0 rows 0 cell.count;
      cell.rows <- rows
    end;
    cell.rows.(cell.count) <- row;
    cell.count <- cell.count + 1

  let fresh_rel name arity =
    { name;
      arity;
      tuples = Array.make 16 [||];
      nrows = 0;
      index = Array.init arity (fun _ -> Hashtbl.create 16);
      dcounts = Array.make arity 0;
      ranges = Array.make arity (0, -1) }

  let push_fact c f =
    let name = Fact.rel f and arity = Fact.arity f in
    let r =
      match find_rel c name arity with
      | Some r -> r
      | None ->
          let r = fresh_rel name arity in
          Hashtbl.add c.rels (name, arity) r;
          r
    in
    let t = Array.init arity (fun i -> Interner.intern c.pool (Fact.arg f i)) in
    if r.nrows = Array.length r.tuples then begin
      let tuples = Array.make (max 16 (2 * r.nrows)) [||] in
      Array.blit r.tuples 0 tuples 0 r.nrows;
      r.tuples <- tuples
    end;
    let row = r.nrows in
    r.tuples.(row) <- t;
    r.nrows <- row + 1;
    Array.iteri
      (fun pos v ->
        (match Hashtbl.find_opt r.index.(pos) v with
        | Some cell -> cell_push cell row
        | None ->
            Hashtbl.add r.index.(pos) v { count = 1; rows = [| row |] };
            r.dcounts.(pos) <- r.dcounts.(pos) + 1;
            let lo, hi = r.ranges.(pos) in
            r.ranges.(pos) <-
              (if hi < lo then (v, v) else (min lo v, max hi v))))
      t

  (* Catch the compiled form up to the live database: intern and append
     exactly the facts added since [c.db_version] (the insertion log), in
     place. The interner pool only grows, so every previously issued value
     id — including ids folded into cached plans — stays valid. Plan cores
     are discarded: row counts and distinct counts changed, so cached static
     orders could violate the selectivity invariant (E005). *)
  let extend c db =
    let live = Database.version db in
    if c.db_version < live then begin
      List.iter (push_fact c) (Database.facts_since db c.db_version);
      c.db_version <- live;
      c.plans <- No_plans
    end

  (* Building from scratch IS extending an empty form with the full insertion
     log, so an incrementally maintained compiled database and a rebuilt one
     are identical structure-for-structure (same tuple order, same cell
     order) — the determinism the parallel partitioner and the incremental
     tests rely on. *)
  let build db =
    let c =
      { pool = Interner.create ~capacity:256 ();
        rels = Hashtbl.create 16;
        db_version = 0;
        (* facts_since 0 replays the net-live facts, so a fresh build is
           already reconciled with every past deletion *)
        db_deletions = Database.deletions db;
        plans = No_plans;
        adapts = No_adapts }
    in
    extend c db;
    c

  type Database.cache += Compiled of t

  (* Compiling is linear in the database and cached on the database itself;
     after Database.add the cached form catches up via [extend] — O(new
     facts), not O(data) — so hot-path re-planning after inserts stops
     paying full recompilation. *)
  let of_database db =
    match Database.get_cache db with
    | Some (Compiled c) when c.db_deletions = Database.deletions db ->
        extend c db;
        c
    | _ ->
        (* either no cached form, or a deletion landed since the cached form
           was synced: the extend path cannot un-append, so rebuild. Stale
           plans still holding the old store then legitimately trip the E006
           version-triple (their store is behind the live database). *)
        let c = build db in
        Database.set_cache db (Compiled c);
        c
end

(* ------------------------------------------------------------------ *)
(* Plans: one compiled instruction sequence per atom                    *)
(* ------------------------------------------------------------------ *)

type op =
  | Check of int  (* argument must equal this interned constant *)
  | Slot of int   (* argument reads/writes this environment slot *)

type atom_plan = {
  a_rel : Db.rel;
  a_ops : op array;
}

(* ------------------------------------------------------------------ *)
(* Selectivity scoring and the static order invariant                    *)
(* ------------------------------------------------------------------ *)

(* [selectivity ~rows ~dcounts ops] estimates log10 of the candidate rows an
   instruction sequence leaves after its Check instructions filter, under the
   uniformity assumption: each Check at position [pos] keeps a 1/dcount(pos)
   fraction of the stored rows. Empty relations score -inf. This is the
   ranking the static order sorts by, audited by Plan_audit E005 and the
   checked interpreter. *)
let selectivity ~rows ~dcounts ops =
  if rows = 0 then neg_infinity
  else begin
    let s = ref (log10 (float_of_int rows)) in
    Array.iteri
      (fun pos op ->
        match op with
        | Check _ ->
            let d = if pos < Array.length dcounts then dcounts.(pos) else 1 in
            if d > 0 then s := !s -. log10 (float_of_int d)
        | Slot _ -> ())
      ops;
    !s
  end

let ground ops = Array.for_all (function Check _ -> true | Slot _ -> false) ops

(* lexicographic static-order key: ground atoms first (they filter to a
   constant-time membership check), then ascending selectivity score *)
let order_key ~rows ~dcounts ops =
  ((if ground ops then 0 else 1), selectivity ~rows ~dcounts ops)

let atom_score (ap : atom_plan) =
  selectivity ~rows:ap.a_rel.Db.nrows ~dcounts:ap.a_rel.Db.dcounts ap.a_ops

let atom_key (ap : atom_plan) =
  order_key ~rows:ap.a_rel.Db.nrows ~dcounts:ap.a_rel.Db.dcounts ap.a_ops

(* ------------------------------------------------------------------ *)
(* Translation-validation certificates                                   *)
(* ------------------------------------------------------------------ *)

(* why an optimization pass dropped an atom *)
type drop =
  | Duplicate_of of int   (* exact duplicate of this (kept) before-atom *)
  | Ground_matched of int (* all-Check atom satisfied by this stored row *)

(* plain-data certificate emitted by every optimization pass: the before ->
   after mapping of slots and atoms plus the facts justifying each rewrite.
   Analysis.Equiv re-checks all of it in O(plan); nothing here is trusted. *)
type cert = {
  cert_pass : string;          (* pass name, e.g. "constant-fold" *)
  cert_reorders : bool;        (* pass is allowed to permute the static order *)
  cert_slot_map : int array;   (* before slot -> after slot, -1 = dropped *)
  cert_atom_map : int array;   (* before atom -> after atom, -1 = dropped *)
  cert_folds : (int * int) array;  (* (before slot, interned id) folded *)
  cert_drops : (int * drop) array; (* (before atom, justification) *)
  cert_scores : float array;   (* claimed selectivity per after-atom *)
}

(* the init-independent part of a plan, cached on the compiled database
   keyed by the atom list — repeated evaluation of the same body under
   different partial bindings (the shape of every loop in lib/wdpt) pays
   for instruction selection once *)
type core = {
  c_vars : string Interner.t;
  c_atoms : atom_plan array;  (* [||] when statically infeasible *)
  c_order : int array;        (* static atom order: ground first, then
                                 ascending selectivity score *)
  c_feasible : bool;
}

(* Per-atom runtime cardinality counters. A [context] is one entry into an
   atom's candidate loop (one partial environment the atom was probed
   under), [probed] counts the candidate rows the loop considered, and
   [survived] the rows that passed every check. Counters are plain ints:
   each interpreter slice owns its private record and parallel regions
   merge chunk-local records at the join, so no counter is ever shared
   between domains (the PR 6 race discipline). *)
type fb = {
  fb_contexts : int array;   (* per atom: probe contexts entered *)
  fb_probed : int array;     (* per atom: candidate rows considered *)
  fb_survived : int array;   (* per atom: rows passing every check *)
  mutable fb_runs : int;     (* completed top-level enumerations *)
}

let fb_create n =
  let n = max 1 n in
  { fb_contexts = Array.make n 0;
    fb_probed = Array.make n 0;
    fb_survived = Array.make n 0;
    fb_runs = 0 }

let fb_add dst src =
  let n = Array.length dst.fb_contexts in
  for i = 0 to min n (Array.length src.fb_contexts) - 1 do
    dst.fb_contexts.(i) <- dst.fb_contexts.(i) + src.fb_contexts.(i);
    dst.fb_probed.(i) <- dst.fb_probed.(i) + src.fb_probed.(i);
    dst.fb_survived.(i) <- dst.fb_survived.(i) + src.fb_survived.(i)
  done;
  dst.fb_runs <- dst.fb_runs + src.fb_runs

type t = {
  cdb : Db.t;
  vars : string Interner.t;  (* variable name <-> slot *)
  atoms : atom_plan array;
  order : int array;         (* initial arrangement of [remaining] *)
  init_env : int array;      (* slot -> value id, -1 = unbound *)
  feasible : bool;           (* false: some atom can never match *)
  init : Mapping.t;
  src_atoms : Atom.t list;   (* the compiled atom list, for inspection *)
  src_db : Database.t;       (* the database the plan was compiled against *)
  compiled_at : int;         (* database version at compile time; the cdb may
                                since have been incrementally extended *)
  calib : float array;       (* per-atom log10 selectivity adjustment learned
                                from observed counters; zero on fresh plans *)
  costed_at : int;           (* stats epoch the calibration was costed
                                against (= compiled_at when uncalibrated) *)
  mutable feedback : fb option;  (* accumulated counters of completed runs *)
  provenance : provenance;
}

(* how the plan came to be: straight out of [compile], or rewritten by the
   optimization pipeline. Each stage records the plan BEFORE that pass ran
   together with the pass's certificate, so Analysis.Equiv can replay the
   whole trail and the engine can fall back to the unoptimized original. *)
and provenance =
  | Compiled
  | Optimized of { stages : (t * cert) list }

(* calibrated selectivity: the static score shifted by the plan's learned
   per-atom log10 adjustment. Zero on fresh plans, so every calibrated key
   below degenerates to the static one unless adaptation applied. *)
let calib_of (p : t) i = if i < Array.length p.calib then p.calib.(i) else 0.
let calibrated_score (p : t) i = atom_score p.atoms.(i) +. calib_of p i

let calibrated_key (p : t) i =
  ((if ground p.atoms.(i).a_ops then 0 else 1), calibrated_score p i)

type plan_tbl = {
  p_tbl : (Atom.t list, core) Hashtbl.t;
  (* one-entry memo: callers that evaluate the same body list over many
     init bindings (every sweep in lib/wdpt and bench) hit on physical
     equality without hashing the atoms at all *)
  mutable p_last_key : Atom.t list;
  mutable p_last : core option;
}

type Db.plan_store += Plans of plan_tbl

let build_core cdb atom_list =
  let vars = Interner.create ~capacity:16 () in
  let feasible = ref true in
  let atoms =
    List.map
      (fun a ->
        match Db.find_rel cdb (Atom.rel a) (Atom.arity a) with
        | None ->
            feasible := false;
            None
        | Some rel ->
            let ops =
              Array.of_list
                (List.map
                   (fun t ->
                     match t with
                     | Term.Const v -> (
                         match Interner.find cdb.Db.pool v with
                         | Some id -> Check id
                         | None ->
                             (* the constant occurs in no fact *)
                             feasible := false;
                             Check (-1))
                     | Term.Var x -> Slot (Interner.intern vars x))
                   (Atom.args a))
            in
            Some { a_rel = rel; a_ops = ops })
      atom_list
  in
  let atoms =
    if !feasible then Array.of_list (List.map Option.get atoms) else [||]
  in
  (* static atom order: ground atoms first, then ascending selectivity score
     (stable). The runtime selection is still dynamic (fewest candidates
     under the current env); this only fixes the initial arrangement and
     tie-breaking, and gives the plan a statically auditable order
     invariant — richer than raw row counts because Check instructions
     discount by the distinct count of their position. *)
  let order =
    let key i = atom_key atoms.(i) in
    Array.of_list
      (List.stable_sort
         (fun a b -> compare (key a) (key b))
         (List.init (Array.length atoms) Fun.id))
  in
  { c_vars = vars; c_atoms = atoms; c_order = order; c_feasible = !feasible }

let core_of cdb atom_list =
  let pt =
    match cdb.Db.plans with
    | Plans t -> t
    | _ ->
        let t = { p_tbl = Hashtbl.create 64; p_last_key = []; p_last = None } in
        cdb.Db.plans <- Plans t;
        t
  in
  match pt.p_last with
  | Some core when pt.p_last_key == atom_list -> core
  | _ ->
      let core =
        match Hashtbl.find_opt pt.p_tbl atom_list with
        | Some core -> core
        | None ->
            (* instantiated bodies can produce unboundedly many distinct atom
               lists per database; a dumb reset bounds the cache *)
            if Hashtbl.length pt.p_tbl > 4096 then Hashtbl.reset pt.p_tbl;
            let core = build_core cdb atom_list in
            Hashtbl.add pt.p_tbl atom_list core;
            core
      in
      pt.p_last_key <- atom_list;
      pt.p_last <- Some core;
      core

let compile_base db atom_list ~init =
  let cdb = Db.of_database db in
  let core = core_of cdb atom_list in
  let feasible = ref core.c_feasible in
  let nslots = Interner.size core.c_vars in
  let init_env = Array.make (max 1 nslots) (-1) in
  List.iter
    (fun (x, v) ->
      match Interner.find core.c_vars x with
      | None -> ()  (* bound variable not mentioned by any atom: passes through *)
      | Some slot -> (
          match Interner.find cdb.Db.pool v with
          | Some id -> init_env.(slot) <- id
          | None ->
              (* the variable must match a database value equal to a value
                 that occurs in no fact *)
              feasible := false))
    (Mapping.bindings init);
  let atoms = if !feasible then core.c_atoms else [||] in
  { cdb;
    vars = core.c_vars;
    atoms;
    order = (if !feasible then core.c_order else [||]);
    init_env;
    feasible = !feasible;
    init;
    src_atoms = atom_list;
    src_db = db;
    compiled_at = cdb.Db.db_version;
    calib = Array.make (max 1 (Array.length atoms)) 0.;
    costed_at = cdb.Db.db_version;
    feedback = None;
    provenance = Compiled }

(* ------------------------------------------------------------------ *)
(* Optimization passes                                                   *)
(* ------------------------------------------------------------------ *)

(* Each pass maps a plan to a rewritten plan plus a certificate. Passes never
   mutate their input (plan cores are shared through the per-atom-list cache,
   so every changed array is freshly allocated) and each one is O(plan) —
   compile-time work must stay flat in |D|. *)

let identity_map n = Array.init n Fun.id

let scores_of (p : t) = Array.map atom_score p.atoms

let identity_cert name (p : t) =
  { cert_pass = name;
    cert_reorders = false;
    cert_slot_map = identity_map (Interner.size p.vars);
    cert_atom_map = identity_map (Array.length p.atoms);
    cert_folds = [||];
    cert_drops = [||];
    cert_scores = scores_of p }

(* constant folding: a slot bound by [init] always holds the same id, so a
   [Slot s] instruction on it is equivalent to [Check init_env.(s)]. Sound
   for read-back because init-bound names are never read out of the
   environment (see [conversion_table]). *)
let pass_fold (p : t) =
  let folds = ref [] in
  let changed = ref false in
  let atoms =
    Array.map
      (fun ap ->
        let any =
          Array.exists
            (function Slot s -> p.init_env.(s) >= 0 | Check _ -> false)
            ap.a_ops
        in
        if not any then ap
        else begin
          changed := true;
          let ops =
            Array.map
              (function
                | Slot s when p.init_env.(s) >= 0 ->
                    if not (List.mem_assoc s !folds) then
                      folds := (s, p.init_env.(s)) :: !folds;
                    Check p.init_env.(s)
                | op -> op)
              ap.a_ops
          in
          { ap with a_ops = ops }
        end)
      p.atoms
  in
  let p' = if !changed then { p with atoms } else p in
  let cert =
    { (identity_cert "constant-fold" p') with
      cert_folds = Array.of_list (List.rev !folds) }
  in
  (p', cert)

(* a stored row matching an all-Check instruction sequence, found by scanning
   the smallest counted cell among the checked positions; None when nothing
   matches *)
let ground_witness_row (ap : atom_plan) =
  let r = ap.a_rel in
  let ops = ap.a_ops in
  if Array.length ops = 0 then
    if r.Db.nrows > 0 then Some 0 else None
  else begin
    let best = ref None and missing = ref false in
    Array.iteri
      (fun pos op ->
        match op with
        | Check id -> (
            match Hashtbl.find_opt r.Db.index.(pos) id with
            | None -> missing := true
            | Some cell -> (
                match !best with
                | Some (c, _) when c <= cell.Db.count -> ()
                | _ -> best := Some (cell.Db.count, cell.Db.rows)))
        | Slot _ -> ())
      ops;
    if !missing then None
    else
      match !best with
      | None -> None
      | Some (count, rows) ->
          let matches ri =
            let t = r.Db.tuples.(ri) in
            let ok = ref true in
            Array.iteri
              (fun i op ->
                match op with
                | Check id -> if t.(i) <> id then ok := false
                | Slot _ -> ())
              ops;
            !ok
          in
          (* live prefix only: the cell array may have spare capacity *)
          let rec scan i =
            if i >= count then None
            else if matches rows.(i) then Some rows.(i)
            else scan (i + 1)
          in
          scan 0
  end

(* dead-instruction elimination: an atom that exactly duplicates an earlier
   kept atom constrains nothing new; an all-Check atom satisfied by some
   stored row (the certificate names the witness row) is always satisfied.
   Unmatched ground atoms are deliberately left in place: proving emptiness
   is O(data), and the dynamic selection already kills such enumerations at
   the first node. *)
let pass_dead_instruction (p : t) =
  let n = Array.length p.atoms in
  let atom_map = Array.make n (-1) in
  let drops = ref [] and kept_rev = ref [] in
  for i = 0 to n - 1 do
    let ap = p.atoms.(i) in
    let dup =
      List.find_opt
        (fun j ->
          let aj = p.atoms.(j) in
          aj.a_rel == ap.a_rel && aj.a_ops = ap.a_ops)
        !kept_rev
    in
    match dup with
    | Some j -> drops := (i, Duplicate_of j) :: !drops
    | None -> (
        match if ground ap.a_ops then ground_witness_row ap else None with
        | Some row -> drops := (i, Ground_matched row) :: !drops
        | None -> kept_rev := i :: !kept_rev)
  done;
  let kept = Array.of_list (List.rev !kept_rev) in
  Array.iteri (fun new_i old_i -> atom_map.(old_i) <- new_i) kept;
  if Array.length kept = n then (p, identity_cert "dead-instruction" p)
  else begin
    let atoms = Array.map (fun i -> p.atoms.(i)) kept in
    let order =
      Array.of_list
        (List.filter_map
           (fun ai -> if atom_map.(ai) >= 0 then Some atom_map.(ai) else None)
           (Array.to_list p.order))
    in
    let src = Array.of_list p.src_atoms in
    let src_atoms = Array.to_list (Array.map (fun i -> src.(i)) kept) in
    let calib =
      if Array.length kept = 0 then [| 0. |]
      else Array.map (fun i -> calib_of p i) kept
    in
    let p' = { p with atoms; order; src_atoms; calib } in
    let cert =
      { (identity_cert "dead-instruction" p') with
        cert_atom_map = atom_map;
        cert_drops = Array.of_list (List.rev !drops) }
    in
    (p', cert)
  end

(* dead-slot elimination: a slot no instruction touches (after folding these
   are exactly the init-bound ones) never receives or supplies a value, so it
   can be dropped and the survivors renumbered densely. Read-back is
   unaffected: init-bound names come from [p.init], untouched unbound slots
   stay at -1 and are skipped either way. *)
let pass_dead_slot (p : t) =
  let nv = Interner.size p.vars in
  let touched = Array.make (max 1 nv) false in
  Array.iter
    (fun ap ->
      Array.iter
        (function Slot s -> touched.(s) <- true | Check _ -> ())
        ap.a_ops)
    p.atoms;
  let all = ref true in
  for s = 0 to nv - 1 do
    if not touched.(s) then all := false
  done;
  if !all then (p, identity_cert "dead-slot" p)
  else begin
    let vars = Interner.create ~capacity:(max 16 nv) () in
    let slot_map =
      Array.init nv (fun s ->
          if touched.(s) then Interner.intern vars (Interner.get p.vars s)
          else -1)
    in
    let nv' = Interner.size vars in
    let init_env = Array.make (max 1 nv') (-1) in
    Array.iteri
      (fun s s' -> if s' >= 0 then init_env.(s') <- p.init_env.(s))
      slot_map;
    let atoms =
      Array.map
        (fun ap ->
          { ap with
            a_ops =
              Array.map
                (function Slot s -> Slot slot_map.(s) | op -> op)
                ap.a_ops })
        p.atoms
    in
    let p' = { p with vars; atoms; init_env } in
    let cert = { (identity_cert "dead-slot" p') with cert_slot_map = slot_map } in
    (p', cert)
  end

(* check hoisting: stable-partition the static order so fully-ground atoms
   (cheap membership checks after folding) run before any slot is written *)
let pass_hoist (p : t) =
  let g, ng =
    List.partition
      (fun ai -> ground p.atoms.(ai).a_ops)
      (Array.to_list p.order)
  in
  let order = Array.of_list (g @ ng) in
  let p' = if order = p.order then p else { p with order } in
  (p', { (identity_cert "check-hoist" p') with cert_reorders = true })

(* selectivity-aware reordering: re-establish the full static-order invariant
   (ground first, ascending calibrated selectivity) that constant folding
   broke by turning Slot instructions into Checks. The key includes the
   plan's learned calibration so adapted plans keep their observed order
   through the pass pipeline (zero calibration = the static key). *)
let pass_reorder (p : t) =
  let key ai = calibrated_key p ai in
  let order =
    Array.of_list
      (List.stable_sort
         (fun a b -> compare (key a) (key b))
         (Array.to_list p.order))
  in
  let p' = if order = p.order then p else { p with order } in
  (p', { (identity_cert "selectivity-reorder" p') with cert_reorders = true })

(* Global engine toggles are atomics, read exactly once per top-level
   enumeration (and threaded into every domain worker of a parallel region),
   so a concurrent set_checked/set_optimize/set_domains from another domain
   can never tear an in-flight run. *)
let optimize_flag =
  Atomic.make
    (match Sys.getenv_opt "WDPT_ENGINE_OPT" with
    | Some ("0" | "false" | "no") -> false
    | _ -> true)

let set_optimize b = Atomic.set optimize_flag b
let optimize_enabled () = Atomic.get optimize_flag

let optimize p =
  match p.provenance with
  | Optimized _ -> p
  | Compiled ->
      if not p.feasible then p
      else begin
        let stages = ref [] in
        let step pass q =
          let q', cert = pass q in
          stages := (q, cert) :: !stages;
          q'
        in
        let q = step pass_fold p in
        let q = step pass_dead_instruction q in
        let q = step pass_dead_slot q in
        let q = step pass_hoist q in
        let q = step pass_reorder q in
        { q with provenance = Optimized { stages = List.rev !stages } }
      end

(* ------------------------------------------------------------------ *)
(* Verified adaptive re-planning                                        *)
(* ------------------------------------------------------------------ *)

(* Adaptation recalibrates the static selectivity scores from the observed
   per-atom counters and re-sorts the static order for the NEXT compile of
   the same atom list. Every swap emits a plain-data certificate that
   Analysis.Feedback independently re-verifies (E025): nothing the loop
   learns is trusted. Gated by WDPT_ENGINE_ADAPT / --adapt. *)

let adapt_flag =
  Atomic.make
    (match Sys.getenv_opt "WDPT_ENGINE_ADAPT" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false)

let set_adapt b = Atomic.set adapt_flag b
let adapt_enabled () = Atomic.get adapt_flag

(* drift beyond this many log10 decades between the calibrated estimate and
   the observed per-context survival triggers re-calibration (and E022) *)
let drift_threshold_flag = Atomic.make 2.0

let set_drift_threshold t =
  Atomic.set drift_threshold_flag (Float.max 0.1 t)

let drift_threshold () = Atomic.get drift_threshold_flag

(* below this many probed rows the evidence is too thin to act on *)
let drift_min_probed_flag = Atomic.make 64
let set_drift_min_probed n = Atomic.set drift_min_probed_flag (max 1 n)
let drift_min_probed () = Atomic.get drift_min_probed_flag

(* certificate of one plan swap: enough to recompute the calibration and
   the re-sorted order from the before-plan and re-verify both *)
type swap_cert = {
  sw_epoch : int;     (* stats epoch (store version) the swap was costed at *)
  sw_runs : int;      (* completed runs the evidence covers *)
  sw_drift : (int * float * float) array;
      (* (atom, calibrated estimate, observed log10 selectivity) per
         drifted atom — the E022-level evidence justifying the swap *)
  sw_calib : float array;  (* full per-atom calibration after the swap *)
}

(* [replan p]: inspect the accumulated counters; on E022-level drift return
   the recalibrated plan and its certificate. The drift baseline is the
   CALIBRATED score, so a well-calibrated plan observes obs ≈ est and never
   re-triggers on its own evidence. One-sided: only underestimates (more
   survivors than predicted) force a swap — overestimates only make the
   static order conservative. *)
let replan (p : t) =
  match p.feedback with
  | None -> None
  | Some fb ->
      let n = Array.length p.atoms in
      if n = 0 || not p.feasible then None
      else begin
        let threshold = drift_threshold () in
        let min_probed = drift_min_probed () in
        let drifts = ref [] in
        for i = n - 1 downto 0 do
          let c = fb.fb_contexts.(i) and s = fb.fb_survived.(i) in
          if c > 0 && fb.fb_probed.(i) >= min_probed && s > 0 then begin
            let obs = log10 (float_of_int s /. float_of_int c) in
            let est = calibrated_score p i in
            if obs -. est > threshold then drifts := (i, est, obs) :: !drifts
          end
        done;
        match !drifts with
        | [] -> None
        | ds ->
            let calib = Array.copy p.calib in
            List.iter
              (fun (i, est, obs) -> calib.(i) <- calib.(i) +. (obs -. est))
              ds;
            let p1 = { p with calib } in
            let key ai = calibrated_key p1 ai in
            let order =
              Array.of_list
                (List.stable_sort
                   (fun a b -> compare (key a) (key b))
                   (Array.to_list p.order))
            in
            let p' =
              { p1 with
                order;
                costed_at = p.cdb.Db.db_version;
                feedback = None }
            in
            let cert =
              { sw_epoch = p.cdb.Db.db_version;
                sw_runs = fb.fb_runs;
                sw_drift = Array.of_list ds;
                sw_calib = calib }
            in
            Some (p', cert)
      end

(* the stats-epoch-keyed calibration cache, living on the compiled database
   beside the plan cores but with a different lifetime: Db.extend discards
   cores eagerly but leaves these entries to be epoch-evicted at lookup *)
type adapt_entry = {
  ad_epoch : int;          (* store version the calibration was costed at *)
  ad_calib : float array;
  ad_cert : swap_cert;     (* the justifying swap, re-verifiable by audit *)
}

type Db.adapt_store += Adapts of (Atom.t list, adapt_entry) Hashtbl.t

let adapt_tbl (cdb : Db.t) =
  match cdb.Db.adapts with
  | Adapts t -> t
  | _ ->
      let t = Hashtbl.create 16 in
      cdb.Db.adapts <- Adapts t;
      t

let store_adapt (p : t) cert =
  let t = adapt_tbl p.cdb in
  if Hashtbl.length t > 4096 then Hashtbl.reset t;
  Hashtbl.replace t p.src_atoms
    { ad_epoch = cert.sw_epoch; ad_calib = cert.sw_calib; ad_cert = cert }

let find_adapt (p : t) = Hashtbl.find_opt (adapt_tbl p.cdb) p.src_atoms
let cached_swap (p : t) = Option.map (fun e -> e.ad_cert) (find_adapt p)

(* apply a cached calibration to a freshly compiled plan. An entry learned
   under an older stats epoch than the store now carries is stale (the
   E024 shape): it is evicted and the plan compiles uncalibrated. *)
let apply_adapt (p : t) =
  if not (Atomic.get adapt_flag) then p
  else
    match find_adapt p with
    | None -> p
    | Some e ->
        if
          e.ad_epoch <> p.cdb.Db.db_version
          || Array.length e.ad_calib <> max 1 (Array.length p.atoms)
          || not p.feasible
        then begin
          Hashtbl.remove (adapt_tbl p.cdb) p.src_atoms;
          p
        end
        else begin
          let p1 = { p with calib = e.ad_calib; costed_at = e.ad_epoch } in
          let key ai = calibrated_key p1 ai in
          let order =
            Array.of_list
              (List.stable_sort
                 (fun a b -> compare (key a) (key b))
                 (Array.to_list p1.order))
          in
          { p1 with order }
        end

let compile db atom_list ~init =
  let p = compile_base db atom_list ~init in
  let p = apply_adapt p in
  if Atomic.get optimize_flag then optimize p else p

let slot_count p = Interner.size p.vars
let value_of p id = Interner.get p.cdb.Db.pool id
let slot_of p x = Interner.find p.vars x

(* ------------------------------------------------------------------ *)
(* The matching loop                                                    *)
(* ------------------------------------------------------------------ *)

(* The first dynamic atom selection of an enumeration, replicated outside the
   matching loop so the parallel partitioner can slice its candidate row
   sequence: at the top level the environment is exactly [init_env], so the
   selection — smallest stored count among bound positions of each atom in
   [order], strict first-wins minimum — is a pure function of the plan.
   Chunked runs that enumerate contiguous slices of this row sequence and
   concatenate in slice order reproduce the sequential enumeration order
   exactly. *)
type first_choice = {
  fc_pos : int;          (* position of the chosen atom inside [order] *)
  fc_rows : int array;   (* candidate row indices (live prefix [fc_count]) *)
  fc_scan : bool;        (* no bound position: iterate the whole relation *)
  fc_count : int;        (* number of top-level candidates *)
}

let select_first p =
  let n = Array.length p.atoms in
  if not p.feasible || n = 0 then None
  else begin
    let env = p.init_env in
    let best_pos = ref 0 and best_cost = ref 0 in
    let best_rows = ref [||] and best_scan = ref false in
    for j = 0 to n - 1 do
      let ap = p.atoms.(p.order.(j)) in
      let r = ap.a_rel in
      let cost = ref r.Db.nrows and rows = ref [||] and scan = ref true in
      let ops = ap.a_ops in
      for pos = 0 to Array.length ops - 1 do
        let bound =
          match ops.(pos) with Check id -> id | Slot s -> env.(s)
        in
        if bound >= 0 then
          match Hashtbl.find_opt r.Db.index.(pos) bound with
          | Some cell ->
              if !scan || cell.Db.count < !cost then begin
                cost := cell.Db.count;
                rows := cell.Db.rows;
                scan := false
              end
          | None ->
              cost := 0;
              rows := [||];
              scan := false
      done;
      if j = 0 || !cost < !best_cost then begin
        best_pos := j;
        best_cost := !cost;
        best_rows := !rows;
        best_scan := !scan
      end
    done;
    Some
      { fc_pos = !best_pos;
        fc_rows = !best_rows;
        fc_scan = !best_scan;
        fc_count = !best_cost }
  end

let no_cancel () = false

(* Commit one completed (uncancelled) enumeration's counters into the plan:
   the top-level atom gets its single probe context (one per run, never per
   chunk — parallel chunks slice ONE top-level candidate loop), the record
   is folded into the plan's accumulator, and under adaptation the evidence
   is re-examined for E022-level drift. Runs on the coordinating domain
   only, after any region join. *)
let fb_commit p fc fb =
  let top = p.order.(fc.fc_pos) in
  if top >= 0 && top < Array.length fb.fb_contexts then
    fb.fb_contexts.(top) <- fb.fb_contexts.(top) + 1;
  fb.fb_runs <- fb.fb_runs + 1;
  (match p.feedback with
  | Some dst -> fb_add dst fb
  | None -> p.feedback <- Some fb);
  if Atomic.get adapt_flag then
    match replan p with
    | None -> ()
    | Some (_, cert) -> store_adapt p cert

(* [iter_envs_fast_slice p fc ~lo ~hi ~cancel f]: the matching loop, restricted
   to candidates [lo, hi) of the top-level choice [fc]. [cancel] is polled
   between top-level candidates (a peer found a witness). The full sequential
   enumeration is the [0, fc_count) slice. *)
let iter_envs_fast_slice p fc ~lo ~hi ~cancel ~fb f =
  if p.feasible && Array.length p.atoms > 0 then begin
    let env = Array.copy p.init_env in
    let n = Array.length p.atoms in
    let fb_c = fb.fb_contexts
    and fb_p = fb.fb_probed
    and fb_s = fb.fb_survived in
    begin
      let remaining = Array.copy p.order in
      (* a slot is written at most once per search path, so one trail of
         [nslots] entries serves the whole recursion *)
      let trail = Array.make (Array.length env) 0 in
      let sp = ref 0 in
      let undo_to mark =
        while !sp > mark do
          decr sp;
          env.(trail.(!sp)) <- -1
        done
      in
      (* returns false with the trail already unwound on mismatch; on success
         the caller undoes to its own pre-call mark after recursing *)
      let match_tuple ops (t : Tuple.t) =
        let mark = !sp in
        let len = Array.length ops in
        let rec go i =
          if i >= len then true
          else
            let arg = t.(i) in
            match ops.(i) with
            | Check id -> if arg = id then go (i + 1) else false
            | Slot s ->
                let v = env.(s) in
                if v < 0 then begin
                  env.(s) <- arg;
                  trail.(!sp) <- s;
                  incr sp;
                  go (i + 1)
                end
                else if v = arg then go (i + 1)
                else false
        in
        if go 0 then true
        else begin
          undo_to mark;
          false
        end
      in
      (* estimated candidate count of an atom under the current env: the
         smallest stored count among bound positions, defaulting to a scan
         of the whole relation — exactly the ranking the old evaluator
         computed by materializing and length-comparing candidate lists.
         Results land in the three refs below so the selection loop in
         [go] allocates nothing. *)
      let est_cost = ref 0 and est_rows = ref [||] and est_scan = ref false in
      let estimate ap =
        let r = ap.a_rel in
        est_cost := r.Db.nrows;
        est_rows := [||];
        est_scan := true;
        let ops = ap.a_ops in
        for pos = 0 to Array.length ops - 1 do
          let bound =
            match ops.(pos) with
            | Check id -> id
            | Slot s -> env.(s)
          in
          if bound >= 0 then
            match Hashtbl.find_opt r.Db.index.(pos) bound with
            | Some cell ->
                if !est_scan || cell.Db.count < !est_cost then begin
                  est_cost := cell.Db.count;
                  est_rows := cell.Db.rows;
                  est_scan := false
                end
            | None -> begin
                est_cost := 0;
                est_rows := [||];
                est_scan := false
              end
        done
      in
      let rec go k =
        if k = 0 then f env
        else begin
          estimate p.atoms.(remaining.(0));
          let bi = ref 0 and bcost = ref !est_cost in
          let brows = ref !est_rows and bscan = ref !est_scan in
          for j = 1 to k - 1 do
            estimate p.atoms.(remaining.(j));
            if !est_cost < !bcost then begin
              bi := j;
              bcost := !est_cost;
              brows := !est_rows;
              bscan := !est_scan
            end
          done;
          let slot_j = !bi in
          let ai = remaining.(slot_j) in
          remaining.(slot_j) <- remaining.(k - 1);
          remaining.(k - 1) <- ai;
          let ap = p.atoms.(ai) in
          let ops = ap.a_ops and tuples = ap.a_rel.Db.tuples in
          fb_c.(ai) <- fb_c.(ai) + 1;
          fb_p.(ai) <- fb_p.(ai) + !bcost;
          if !bscan then
            (* candidate counts are live prefixes: bcost rows, not capacity *)
            for ti = 0 to !bcost - 1 do
              let mark = !sp in
              if match_tuple ops tuples.(ti) then begin
                fb_s.(ai) <- fb_s.(ai) + 1;
                go (k - 1);
                undo_to mark
              end
            done
          else begin
            let rows = !brows in
            for ri = 0 to !bcost - 1 do
              let mark = !sp in
              if match_tuple ops tuples.(rows.(ri)) then begin
                fb_s.(ai) <- fb_s.(ai) + 1;
                go (k - 1);
                undo_to mark
              end
            done
          end;
          remaining.(k - 1) <- remaining.(slot_j);
          remaining.(slot_j) <- ai
        end
      in
      (* top level: the pre-computed first choice, restricted to [lo, hi) —
         identical to what [go n] would have selected and iterated. The top
         atom's single probe context is credited at commit time (once per
         run), not here: a chunked region slices this very loop. *)
      let ai = remaining.(fc.fc_pos) in
      remaining.(fc.fc_pos) <- remaining.(n - 1);
      remaining.(n - 1) <- ai;
      let ap = p.atoms.(ai) in
      let ops = ap.a_ops and tuples = ap.a_rel.Db.tuples in
      let i = ref lo in
      while !i < hi && not (cancel ()) do
        let ti = if fc.fc_scan then !i else fc.fc_rows.(!i) in
        let mark = !sp in
        fb_p.(ai) <- fb_p.(ai) + 1;
        if match_tuple ops tuples.(ti) then begin
          fb_s.(ai) <- fb_s.(ai) + 1;
          go (n - 1);
          undo_to mark
        end;
        incr i
      done
    end
  end

(* [iter_envs p f] calls [f env] (env borrowed: valid only during the call)
   for every assignment of the slots consistent with all atoms. *)
let iter_envs_fast p f =
  if p.feasible then begin
    if Array.length p.atoms = 0 then f (Array.copy p.init_env)
    else
      match select_first p with
      | None -> ()
      | Some fc ->
          let fb = fb_create (Array.length p.atoms) in
          iter_envs_fast_slice p fc ~lo:0 ~hi:fc.fc_count ~cancel:no_cancel ~fb
            f;
          fb_commit p fc fb
  end

(* ------------------------------------------------------------------ *)
(* Batched (vectorized) execution                                       *)
(* ------------------------------------------------------------------ *)

(* The batched interpreter executes each compiled instruction over a vector
   of candidate environments instead of one at a time. The environment
   vector is columnar: one flat int array per stage-bound slot, indexed by
   batch row. A fixed stage order (the pre-computed top-level choice, then
   the remaining atoms in static order) makes slot boundness uniform across
   a batch, so each op compiles to a constant check, a column comparison, a
   duplicate-position check, or a column write for the whole batch at once:
   dispatch cost is per (instruction, batch), not per (instruction,
   candidate), and index probes sort/group the batch by probe key so
   counted-cell lookups become sequential runs.

   Two structural facts make the batched enumeration order well-defined and
   equal to the scalar fixed-order twin below, env for env:
   - index cells list stored rows in strictly increasing order (cell_push
     appends) and facts are set-semantic, so the matching tuples of an atom
     under a fixed partial env form the same increasing row sequence
     whichever bound position's cell is probed;
   - batch expansion emits matches input-row-major, which is exactly the
     depth-first order of the fixed-order recursion.

   Top-level candidates are processed in morsel-sized groups, bounding the
   columnar footprint; groups are contiguous candidate ranges, so group
   concatenation preserves the order. *)

let batched_flag =
  Atomic.make
    (match Sys.getenv_opt "WDPT_ENGINE_BATCH" with
    | Some ("0" | "false" | "no") -> false
    | _ -> true)

let set_batched b = Atomic.set batched_flag b
let batched_enabled () = Atomic.get batched_flag

(* morsel size: the unit of parallel work distribution and the batch group
   width of the vectorized interpreter *)
let morsel_cap = 1 lsl 20

let morsel_rows_flag =
  Atomic.make
    (match Sys.getenv_opt "WDPT_ENGINE_MORSEL" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 1 -> min n morsel_cap
        | _ -> 1024)
    | None -> 1024)

let set_morsel_rows n = Atomic.set morsel_rows_flag (max 1 (min n morsel_cap))
let morsel_rows () = Atomic.get morsel_rows_flag

(* High-water marks of the batched pipeline's memory consumers, in the same
   units the certified resource envelope (Analysis.Resource) is stated in.
   Each mark is the peak of one slice (column/dense scratch) or one
   group/chunk (replay buffering) — never a cross-domain sum, so a
   per-slice envelope can be checked sound against it directly. The
   counters are bumped once per slice / group, not per row: measurement
   costs nothing on the hot path. *)
type batch_stats = {
  bm_column_words : int;  (* peak columnar scratch words of any one slice *)
  bm_dense_words : int;   (* peak dense probe-table words of any one slice *)
  bm_replay_rows : int;   (* peak buffered rows of any one group/chunk *)
}

let bm_column_words = Atomic.make 0
let bm_dense_words = Atomic.make 0
let bm_replay_rows = Atomic.make 0

let rec note_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then note_max cell v

let batch_stats () =
  { bm_column_words = Atomic.get bm_column_words;
    bm_dense_words = Atomic.get bm_dense_words;
    bm_replay_rows = Atomic.get bm_replay_rows }

let reset_batch_stats () =
  Atomic.set bm_column_words 0;
  Atomic.set bm_dense_words 0;
  Atomic.set bm_replay_rows 0

(* one atom of the fixed-order pipeline, with its ops split by the role they
   play over a batch whose earlier stages already bound [bs_cols]'s slots *)
type bstage = {
  bs_atom : int;                  (* plan atom index *)
  bs_checks : (int * int) array;  (* (position, interned id): constant check *)
  bs_cols : (int * int) array;    (* (position, slot): column comparison *)
  bs_binds : (int * int) array;   (* (position, slot): column write *)
  bs_dups : (int * int) array;    (* (position, earlier position of same new
                                     slot): intra-tuple equality *)
  bs_filter : bool;               (* no binds: the stage only narrows *)
}

(* the fixed stage order shared by the batched interpreter and its scalar
   twin: the pre-computed top-level choice first, then greedily the atom
   with the most already-bound positions (constant positions count, static
   order breaks ties). Connected queries therefore always probe on at least
   one bound column — processing the remaining atoms in static order would
   expand a cartesian product whenever the selective atom (e.g. one holding
   an init-bound sink variable) sits late in the plan. The order depends
   only on (plan, fc), so it is identical across pool sizes and between the
   batched run and the fixed twin. *)
let fixed_order p fc =
  let fc_atom = p.order.(fc.fc_pos) in
  let nslots = max 1 (Array.length p.init_env) in
  let bound = Array.make nslots false in
  Array.iteri (fun s v -> if v >= 0 then bound.(s) <- true) p.init_env;
  let bind_atom ai =
    Array.iter
      (function Slot s -> bound.(s) <- true | Check _ -> ())
      p.atoms.(ai).a_ops
  in
  bind_atom fc_atom;
  let score ai =
    Array.fold_left
      (fun n op ->
        match op with
        | Check _ -> n + 1
        | Slot s -> if bound.(s) then n + 1 else n)
      0 p.atoms.(ai).a_ops
  in
  let rec pick acc remaining =
    match remaining with
    | [] -> List.rev acc
    | hd :: tl ->
        let best, _ =
          List.fold_left
            (fun ((_, bs) as b) ai ->
              let sa = score ai in
              if sa > bs then (ai, sa) else b)
            (hd, score hd) tl
        in
        bind_atom best;
        pick (best :: acc) (List.filter (fun ai -> ai <> best) remaining)
  in
  fc_atom :: pick [] (List.filter (fun ai -> ai <> fc_atom) (Array.to_list p.order))

(* the fixed stage order compiled per atom. Init-bound slots compile to
   constant checks (their value is batch-invariant), so only stage-bound
   slots ever materialize columns. *)
let batch_stages p fc =
  let nslots = max 1 (Array.length p.init_env) in
  (* -2 unbound, -1 init-bound, k >= 0 first bound by stage k *)
  let binder = Array.make nslots (-2) in
  Array.iteri (fun s v -> if v >= 0 then binder.(s) <- -1) p.init_env;
  List.mapi
    (fun k ai ->
      let ap = p.atoms.(ai) in
      let checks = ref [] and cols = ref [] in
      let binds = ref [] and dups = ref [] in
      let first_pos = Array.make nslots (-1) in
      Array.iteri
        (fun pos op ->
          match op with
          | Check id -> checks := (pos, id) :: !checks
          | Slot s ->
              if binder.(s) = -1 then checks := (pos, p.init_env.(s)) :: !checks
              else if binder.(s) >= 0 then cols := (pos, s) :: !cols
              else if first_pos.(s) >= 0 then dups := (pos, first_pos.(s)) :: !dups
              else begin
                first_pos.(s) <- pos;
                binds := (pos, s) :: !binds
              end)
        ap.a_ops;
      List.iter (fun (_, s) -> binder.(s) <- k) !binds;
      { bs_atom = ai;
        bs_checks = Array.of_list (List.rev !checks);
        bs_cols = Array.of_list (List.rev !cols);
        bs_binds = Array.of_list (List.rev !binds);
        bs_dups = Array.of_list (List.rev !dups);
        bs_filter = !binds = [] })
    (fixed_order p fc)

exception Batch_dead

let iter_envs_batched_slice p fc ~lo ~hi ~cancel ~fb f =
  if p.feasible && Array.length p.atoms > 0 && lo < hi then begin
    let fb_c = fb.fb_contexts
    and fb_p = fb.fb_probed
    and fb_s = fb.fb_survived in
    let stages = Array.of_list (batch_stages p fc) in
    let nstages = Array.length stages in
    let nslots = max 1 (Array.length p.init_env) in
    (* Late materialization. Slot values are written exactly once, indexed
       by the rows of the *level* that bound them: level 0 is the compacted
       stage-0 survivor vector and every expansion stage opens the next
       level. An expansion output row records only its parent row and the
       newly bound columns — carry columns are never copied forward. A
       later stage reaches an earlier binding by walking parent pointers
       (one hop in the common join-the-previous-binding shape), and the
       final expansion streams matches straight into the callback, so the
       widest level is never materialized at all. *)
    let binder_level = Array.make nslots (-1) in
    let stage_level = Array.make nstages 0 in
    let nlevels = ref 1 in
    Array.iter (fun (_, s) -> binder_level.(s) <- 0) stages.(0).bs_binds;
    for k = 1 to nstages - 1 do
      stage_level.(k) <- !nlevels - 1;
      if not stages.(k).bs_filter then begin
        Array.iter
          (fun (_, s) -> binder_level.(s) <- !nlevels)
          stages.(k).bs_binds;
        incr nlevels
      end
    done;
    (* slots bound per level, for environment reconstruction *)
    let level_slots = Array.make !nlevels [||] in
    (let lv = ref 0 in
     level_slots.(0) <- Array.map snd stages.(0).bs_binds;
     for k = 1 to nstages - 1 do
       if not stages.(k).bs_filter then begin
         incr lv;
         level_slots.(!lv) <- Array.map snd stages.(k).bs_binds
       end
     done);
    let max_ncols =
      Array.fold_left (fun m st -> max m (Array.length st.bs_cols)) 1 stages
    in
    let st0 = stages.(0) in
    let tuples0 = p.atoms.(st0.bs_atom).a_rel.Db.tuples in
    let env = Array.copy p.init_env in
    let group = morsel_rows () in
    (* dense probe tables: interned ids are small nonnegative ints, so a
       single-column probe can usually bypass the hash table entirely —
       built once per slice from the counted index, only when the key range
       stays within a constant factor of the cell count. Small slices skip
       the build: the O(index) setup would dominate their probe savings. *)
    let dense_max = Array.make nstages (-1) in
    let dense_count = Array.make nstages [||] in
    let dense_rows = Array.make nstages [||] in
    for k = 1 to nstages - 1 do
      let st = stages.(k) in
      if hi - lo >= 128 && Array.length st.bs_cols = 1 then begin
        let pos, _ = st.bs_cols.(0) in
        let idx = p.atoms.(st.bs_atom).a_rel.Db.index.(pos) in
        let ncells = Hashtbl.length idx in
        let mk = Hashtbl.fold (fun key _ m -> max key m) idx (-1) in
        if mk >= 0 && mk < (4 * ncells) + 64 then begin
          let dc = Array.make (mk + 1) 0 in
          let dr = Array.make (mk + 1) [||] in
          Hashtbl.iter
            (fun key cell ->
              if key >= 0 then begin
                dc.(key) <- cell.Db.count;
                dr.(key) <- cell.Db.rows
              end)
            idx;
          dense_max.(k) <- mk;
          dense_count.(k) <- dc;
          dense_rows.(k) <- dr
        end
      end
    done;
    (* dense footprint of this slice: the two top arrays per built stage
       (the row arrays alias the counted index, nothing is copied) *)
    (let dw = ref 0 in
     for k = 1 to nstages - 1 do
       if dense_max.(k) >= 0 then dw := !dw + (2 * (dense_max.(k) + 1))
     done;
     note_max bm_dense_words !dw);
    (* columnar batch state, rebuilt per morsel group. Every buffer below is
       scratch reused across stages and groups and grown geometrically: the
       steady state of a slice allocates nothing per group. *)
    let width = ref 0 in
    let mask = ref Bytes.empty in
    let alive = ref 0 in
    let cur_level = ref 0 in
    let par = Array.make !nlevels [||] in
    let vals = Array.make nslots [||] in
    let pcols = Array.make max_ncols [||] in
    let pcol_scratch = Array.make max_ncols [||] in
    let anc = Array.make !nlevels 0 in
    let ensure (store : int array array) i cap =
      let b = store.(i) in
      if Array.length b >= cap then b
      else begin
        let nb = Array.make (max cap (2 * Array.length b)) 0 in
        store.(i) <- nb;
        nb
      end
    in
    let regrow (store : int array array) i cap keep =
      let b = store.(i) in
      if Array.length b >= cap then b
      else begin
        let nb = Array.make (max cap (2 * Array.length b)) 0 in
        Array.blit b 0 nb 0 keep;
        store.(i) <- nb;
        nb
      end
    in
    let mask_scratch = ref Bytes.empty in
    let cand_scratch = ref [||] in
    (* peak words of the composite-key candidate arrays, allocated per
       stage invocation rather than kept as scratch *)
    let col_transient = ref 0 in
    let fresh_mask n =
      if Bytes.length !mask_scratch < n then
        mask_scratch := Bytes.create (max n (2 * Bytes.length !mask_scratch));
      Bytes.fill !mask_scratch 0 n '\001';
      !mask_scratch
    in
    let kill i =
      if Bytes.unsafe_get !mask i <> '\000' then begin
        Bytes.unsafe_set !mask i '\000';
        decr alive
      end
    in
    (* rebuild [env]'s carried slots for row [i] of level [l]: one ancestor
       walk, then one read per bound slot *)
    let load_env l i =
      anc.(l) <- i;
      for lv = l downto 1 do
        anc.(lv - 1) <- par.(lv).(anc.(lv))
      done;
      for lv = 0 to l do
        let ss = Array.unsafe_get level_slots lv in
        let j = Array.unsafe_get anc lv in
        for q = 0 to Array.length ss - 1 do
          let s = Array.unsafe_get ss q in
          env.(s) <- vals.(s).(j)
        done
      done
    in
    let run_stage k =
      let st = stages.(k) in
      let l = stage_level.(k) in
      let r = p.atoms.(st.bs_atom).a_rel in
      let tuples = r.Db.tuples in
      let nchecks = Array.length st.bs_checks in
      let ncols = Array.length st.bs_cols in
      let ndups = Array.length st.bs_dups in
      (* constant checks resolve to index cells once per batch; the smallest
         doubles as the shared probe when no column is bound. A missing cell
         means no stored tuple can ever match: the whole batch dies. *)
      let best_const = ref (-1) and best_rows = ref [||] in
      for ci = 0 to nchecks - 1 do
        let pos, id = st.bs_checks.(ci) in
        match Hashtbl.find_opt r.Db.index.(pos) id with
        | None -> raise Batch_dead
        | Some cell ->
            if !best_const < 0 || cell.Db.count < !best_const then begin
              best_const := cell.Db.count;
              best_rows := cell.Db.rows
            end
      done;
      (* probe values for the bound columns, materialized for the current
         level: a binding made at this level is read in place, an older
         binding is chased through parent pointers (depth = level gap, one
         hop when the stage joins against the most recent binding) *)
      let w = !width in
      for ci = 0 to ncols - 1 do
        let _, s = st.bs_cols.(ci) in
        let b = binder_level.(s) in
        if b = l then pcols.(ci) <- vals.(s)
        else begin
          let dst = ensure pcol_scratch ci w in
          (if b = l - 1 then begin
             let pr = par.(l) and sv = vals.(s) in
             for i = 0 to w - 1 do
               Array.unsafe_set dst i
                 (Array.unsafe_get sv (Array.unsafe_get pr i))
             done
           end
           else
             for i = 0 to w - 1 do
               let j = ref i in
               for lv = l downto b + 1 do
                 j := par.(lv).(!j)
               done;
               dst.(i) <- vals.(s).(!j)
             done);
          pcols.(ci) <- dst
        end
      done;
      (* per-row candidate cells. One bound column — the overwhelmingly
         common case in join pipelines — probes the counted index in batch
         order through a last-key memo: runs of equal keys cost a single
         lookup and nothing per-row is materialized. Composite keys sort a
         permutation of the live rows (monomorphic int compares) so each
         distinct key combination costs one lookup per column; expansion
         still walks batch order, so the output order is unchanged. *)
      let shared_scan = ref false in
      let shared_rows = ref [||] and shared_count = ref 0 in
      if ncols = 0 then
        if !best_const >= 0 then begin
          shared_rows := !best_rows;
          shared_count := !best_const
        end
        else begin
          shared_scan := true;
          shared_count := r.Db.nrows
        end;
      let memo_key = ref (-1) in
      let memo_rows = ref [||] and memo_count = ref 0 in
      let idx1 =
        if ncols = 1 then
          let pos, _ = st.bs_cols.(0) in
          r.Db.index.(pos)
        else Hashtbl.create 0
      in
      let dmax = dense_max.(k) in
      let dcount = dense_count.(k) and drows = dense_rows.(k) in
      let probe1 key =
        if key <> !memo_key then begin
          memo_key := key;
          if key >= 0 && key <= dmax then begin
            let n = Array.unsafe_get dcount key in
            if !best_const >= 0 && !best_const < n then begin
              memo_rows := !best_rows;
              memo_count := !best_const
            end
            else begin
              memo_rows := Array.unsafe_get drows key;
              memo_count := n
            end
          end
          else
            match Hashtbl.find_opt idx1 key with
            | None ->
                memo_rows := [||];
                memo_count := 0
            | Some cell ->
                if !best_const >= 0 && !best_const < cell.Db.count then begin
                  memo_rows := !best_rows;
                  memo_count := !best_const
                end
                else begin
                  memo_rows := cell.Db.rows;
                  memo_count := cell.Db.count
                end
        end
      in
      let cand_rows, cand_count =
        if ncols < 2 then ([||], [||])
        else begin
          let cand_rows = Array.make w [||] in
          let cand_count = Array.make w 0 in
          let perm = Array.make (max 1 !alive) 0 in
          col_transient := max !col_transient ((2 * w) + max 1 !alive);
          let pj = ref 0 in
          for i = 0 to w - 1 do
            if Bytes.unsafe_get !mask i <> '\000' then begin
              perm.(!pj) <- i;
              incr pj
            end
          done;
          let cmp (a : int) (b : int) =
            let rec go ci =
              if ci >= ncols then 0
              else
                let col = Array.unsafe_get pcols ci in
                let x : int = Array.unsafe_get col a in
                let y : int = Array.unsafe_get col b in
                if x < y then -1 else if x > y then 1 else go (ci + 1)
            in
            go 0
          in
          Array.sort cmp perm;
          let i = ref 0 in
          while !i < !alive do
            let r0 = perm.(!i) in
            (* resolve this key run: min-count cell across the bound columns
               and the constant cells *)
            let cnt = ref !best_const and rows = ref !best_rows in
            (try
               for ci = 0 to ncols - 1 do
                 let pos, _ = st.bs_cols.(ci) in
                 match Hashtbl.find_opt r.Db.index.(pos) pcols.(ci).(r0) with
                 | None ->
                     cnt := 0;
                     rows := [||];
                     raise Exit
                 | Some cell ->
                     if !cnt < 0 || cell.Db.count < !cnt then begin
                       cnt := cell.Db.count;
                       rows := cell.Db.rows
                     end
               done
             with Exit -> ());
            let run_rows = !rows and run_cnt = max 0 !cnt in
            cand_rows.(r0) <- run_rows;
            cand_count.(r0) <- run_cnt;
            let j = ref (!i + 1) in
            while !j < !alive && cmp r0 perm.(!j) = 0 do
              cand_rows.(perm.(!j)) <- run_rows;
              cand_count.(perm.(!j)) <- run_cnt;
              incr j
            done;
            i := !j
          done;
          (cand_rows, cand_count)
        end
      in
      (* a candidate tuple joins batch row [i] when it passes every op *)
      let admits i (t : Tuple.t) =
        let rec chk ci =
          ci >= nchecks
          ||
          let pos, id = Array.unsafe_get st.bs_checks ci in
          t.(pos) = id && chk (ci + 1)
        in
        let rec colk ci =
          ci >= ncols
          ||
          let pos, _ = Array.unsafe_get st.bs_cols ci in
          t.(pos) = Array.unsafe_get (Array.unsafe_get pcols ci) i
          && colk (ci + 1)
        in
        let rec dupk ci =
          ci >= ndups
          ||
          let pos, pos0 = Array.unsafe_get st.bs_dups ci in
          t.(pos) = t.(pos0) && dupk (ci + 1)
        in
        chk 0 && colk 0 && dupk 0
      in
      (* the dominant stage shape in join pipelines: one bound probe column,
         no constant checks, no intra-tuple duplicates, and no competing
         constant cell. Every tuple in the probed cell then matches by the
         index invariant (stored position = key), so the per-candidate
         verification disappears entirely: filters reduce to a count check
         and expansions blit the cell. *)
      let pure_join = ncols = 1 && nchecks = 0 && ndups = 0 && !best_const < 0 in
      (* counter discipline: every count below is a per-live-row property
         (rows entering, candidates per row, rows/matches surviving), so
         sums over any grouping or chunking of the candidate range are
         identical — the merge-equality the feedback auditor relies on *)
      let sa = st.bs_atom in
      let alive_in = !alive in
      fb_c.(sa) <- fb_c.(sa) + alive_in;
      if st.bs_filter then begin
        fb_p.(sa) <- fb_p.(sa) + alive_in;
        (* narrowing stage: checks mutate the survivor mask in place. With
           no bound column the verdict is batch-invariant. *)
        if ncols = 0 then begin
          let n = !shared_count in
          let hit = ref false in
          (try
             for ci = 0 to n - 1 do
               let ti = if !shared_scan then ci else (!shared_rows).(ci) in
               if admits 0 tuples.(ti) then begin
                 hit := true;
                 raise Exit
               end
             done
           with Exit -> ());
          if not !hit then raise Batch_dead;
          fb_s.(sa) <- fb_s.(sa) + alive_in
        end
        else if pure_join then begin
          (* survival is exactly "the probed cell is non-empty" *)
          let m = !mask and p1 = pcols.(0) in
          for i = 0 to w - 1 do
            if Bytes.unsafe_get m i <> '\000' then begin
              probe1 (Array.unsafe_get p1 i);
              if !memo_count = 0 then kill i
            end
          done;
          fb_s.(sa) <- fb_s.(sa) + !alive;
          if !alive = 0 then raise Batch_dead
        end
        else begin
          let p1 = if ncols = 1 then pcols.(0) else [||] in
          for i = 0 to w - 1 do
            if Bytes.unsafe_get !mask i <> '\000' then begin
              let n, rows =
                if ncols = 1 then begin
                  probe1 (Array.unsafe_get p1 i);
                  (!memo_count, !memo_rows)
                end
                else (cand_count.(i), cand_rows.(i))
              in
              let hit = ref false in
              (try
                 for ci = 0 to n - 1 do
                   if admits i tuples.(rows.(ci)) then begin
                     hit := true;
                     raise Exit
                   end
                 done
               with Exit -> ());
              if not !hit then kill i
            end
          done;
          fb_s.(sa) <- fb_s.(sa) + !alive;
          if !alive = 0 then raise Batch_dead
        end
      end
      else if k = nstages - 1 then begin
        (* final expansion: matches stream straight into the callback in
           input-row-major, stored-row order — the depth-first order — so
           the widest level never hits memory. Carried slot values are
           reconstructed once per input row; each match then writes only
           the newly bound slots. *)
        let nbinds = Array.length st.bs_binds in
        let p1 = if ncols = 1 then pcols.(0) else [||] in
        let ss_l = level_slots.(l) in
        let nss_l = Array.length ss_l in
        let pr = if l > 0 then par.(l) else [||] in
        let last_par = ref (-1) in
        for i = 0 to w - 1 do
          if Bytes.unsafe_get !mask i <> '\000' then begin
            let n, rows =
              if ncols = 0 then (!shared_count, !shared_rows)
              else if ncols = 1 then begin
                probe1 (Array.unsafe_get p1 i);
                (!memo_count, !memo_rows)
              end
              else (cand_count.(i), cand_rows.(i))
            in
            fb_p.(sa) <- fb_p.(sa) + n;
            if n > 0 then begin
              (* levels below the current one change only when the parent
                 row does — consecutive rows blitted from one parent share
                 their whole carried prefix *)
              (if l > 0 then begin
                 let pi = Array.unsafe_get pr i in
                 if pi <> !last_par then begin
                   last_par := pi;
                   anc.(l - 1) <- pi;
                   for lv = l - 1 downto 1 do
                     anc.(lv - 1) <- par.(lv).(anc.(lv))
                   done;
                   for lv = 0 to l - 1 do
                     let ss = Array.unsafe_get level_slots lv in
                     let j = Array.unsafe_get anc lv in
                     for q = 0 to Array.length ss - 1 do
                       let s = Array.unsafe_get ss q in
                       env.(s) <- vals.(s).(j)
                     done
                   done
                 end
               end);
              for q = 0 to nss_l - 1 do
                let s = Array.unsafe_get ss_l q in
                env.(s) <- vals.(s).(i)
              done;
              if pure_join then begin
                fb_s.(sa) <- fb_s.(sa) + n;
                for ci = 0 to n - 1 do
                  let t =
                    Array.unsafe_get tuples (Array.unsafe_get rows ci)
                  in
                  for q = 0 to nbinds - 1 do
                    let pos, s = Array.unsafe_get st.bs_binds q in
                    env.(s) <- t.(pos)
                  done;
                  f env
                done
              end
              else
                for ci = 0 to n - 1 do
                  let ti = if !shared_scan then ci else rows.(ci) in
                  let t = tuples.(ti) in
                  if admits i t then begin
                    fb_s.(sa) <- fb_s.(sa) + 1;
                    for q = 0 to nbinds - 1 do
                      let pos, s = Array.unsafe_get st.bs_binds q in
                      env.(s) <- t.(pos)
                    done;
                    f env
                  end
                done
            end
          end
        done;
        (* everything was emitted: nothing survives to read back *)
        width := 0;
        alive := 0
      end
      else begin
        (* interior expansion: one output row per (input row, matching
           tuple), input-row-major. Each output row records its parent row
           and the newly bound columns only. *)
        let nl = l + 1 in
        let nbinds = Array.length st.bs_binds in
        let ocap = ref (max 16 !alive) in
        let opar = ref (ensure par nl !ocap) in
        let obind = Array.make (max 1 nbinds) [||] in
        for q = 0 to nbinds - 1 do
          let _, s = st.bs_binds.(q) in
          obind.(q) <- ensure vals s !ocap
        done;
        let oj = ref 0 in
        let grow need =
          let nc = ref (2 * !ocap) in
          while !nc < need do
            nc := 2 * !nc
          done;
          opar := regrow par nl !nc !oj;
          for q = 0 to nbinds - 1 do
            let _, s = st.bs_binds.(q) in
            obind.(q) <- regrow vals s !nc !oj
          done;
          ocap := !nc
        in
        let emit i t =
          if !oj = !ocap then grow (!oj + 1);
          let jj = !oj in
          Array.unsafe_set !opar jj i;
          for q = 0 to nbinds - 1 do
            let pos, _ = Array.unsafe_get st.bs_binds q in
            Array.unsafe_set (Array.unsafe_get obind q) jj t.(pos)
          done;
          incr oj
        in
        (if pure_join then begin
           (* the probed cell is exactly the match set: blit it *)
           let m = !mask and p1 = pcols.(0) in
           for i = 0 to w - 1 do
             if Bytes.unsafe_get m i <> '\000' then begin
               probe1 (Array.unsafe_get p1 i);
               let n = !memo_count in
               fb_p.(sa) <- fb_p.(sa) + n;
               if n > 0 then begin
                 let rows = !memo_rows in
                 if !oj + n > !ocap then grow (!oj + n);
                 let jj0 = !oj in
                 let dst = !opar in
                 for ci = 0 to n - 1 do
                   Array.unsafe_set dst (jj0 + ci) i
                 done;
                 for q = 0 to nbinds - 1 do
                   let pos, _ = Array.unsafe_get st.bs_binds q in
                   let dst = Array.unsafe_get obind q in
                   for ci = 0 to n - 1 do
                     let t =
                       Array.unsafe_get tuples (Array.unsafe_get rows ci)
                     in
                     Array.unsafe_set dst (jj0 + ci) t.(pos)
                   done
                 done;
                 oj := jj0 + n
               end
             end
           done
         end
         else begin
           let p1 = if ncols = 1 then pcols.(0) else [||] in
           for i = 0 to w - 1 do
             if Bytes.unsafe_get !mask i <> '\000' then
               if ncols = 0 then begin
                 let n = !shared_count in
                 let rows = !shared_rows in
                 fb_p.(sa) <- fb_p.(sa) + n;
                 for ci = 0 to n - 1 do
                   let ti = if !shared_scan then ci else rows.(ci) in
                   let t = tuples.(ti) in
                   if admits i t then emit i t
                 done
               end
               else begin
                 let n, rows =
                   if ncols = 1 then begin
                     probe1 (Array.unsafe_get p1 i);
                     (!memo_count, !memo_rows)
                   end
                   else (cand_count.(i), cand_rows.(i))
                 in
                 fb_p.(sa) <- fb_p.(sa) + n;
                 for ci = 0 to n - 1 do
                   let t = tuples.(rows.(ci)) in
                   if admits i t then emit i t
                 done
               end
           done
         end);
        fb_s.(sa) <- fb_s.(sa) + !oj;
        if !oj = 0 then raise Batch_dead;
        width := !oj;
        alive := !oj;
        mask := fresh_mask !oj;
        cur_level := nl
      end
    in
    let glo = ref lo in
    while !glo < hi && not (cancel ()) do
      let ghi = min hi (!glo + group) in
      (try
         (* stage 0: survivor bitmask over the candidate vector, then the
            survivors' bind columns are materialized compactly as level 0.
            Its probe context is credited once per run at commit time, like
            the scalar top level. *)
         let w0 = ghi - !glo in
         fb_p.(st0.bs_atom) <- fb_p.(st0.bs_atom) + w0;
         let cand =
           if Array.length !cand_scratch < w0 then
             cand_scratch :=
               Array.make (max w0 (2 * Array.length !cand_scratch)) 0;
           !cand_scratch
         in
         for i = 0 to w0 - 1 do
           cand.(i) <- (if fc.fc_scan then !glo + i else fc.fc_rows.(!glo + i))
         done;
         let m0 = fresh_mask w0 in
         mask := m0;
         width := w0;
         alive := w0;
         Array.iter
           (fun (pos, id) ->
             for i = 0 to w0 - 1 do
               if
                 Bytes.unsafe_get m0 i <> '\000'
                 && (tuples0.(cand.(i))).(pos) <> id
               then begin
                 Bytes.unsafe_set m0 i '\000';
                 decr alive
               end
             done)
           st0.bs_checks;
         Array.iter
           (fun (pos, pos0) ->
             for i = 0 to w0 - 1 do
               if Bytes.unsafe_get m0 i <> '\000' then begin
                 let t = tuples0.(cand.(i)) in
                 if t.(pos) <> t.(pos0) then begin
                   Bytes.unsafe_set m0 i '\000';
                   decr alive
                 end
               end
             done)
           st0.bs_dups;
         if !alive = 0 then raise Batch_dead;
         Array.iter
           (fun (_, s) -> ignore (ensure vals s !alive))
           st0.bs_binds;
         let j = ref 0 in
         for i = 0 to w0 - 1 do
           if Bytes.unsafe_get m0 i <> '\000' then begin
             let t = tuples0.(cand.(i)) in
             Array.iter (fun (pos, s) -> vals.(s).(!j) <- t.(pos)) st0.bs_binds;
             incr j
           end
         done;
         fb_s.(st0.bs_atom) <- fb_s.(st0.bs_atom) + !j;
         width := !j;
         alive := !j;
         mask := fresh_mask !j;
         cur_level := 0;
         for k = 1 to nstages - 1 do
           run_stage k
         done;
         (* read back (only when the pipeline ends in a filter or is a
            single stage — a final expansion already streamed its matches):
            surviving rows, in batch order *)
         for i = 0 to !width - 1 do
           if Bytes.unsafe_get !mask i <> '\000' then begin
             load_env !cur_level i;
             f env
           end
         done
       with Batch_dead -> ());
      glo := ghi
    done;
    (* columnar footprint of this slice: every scratch buffer is retained
       across groups, so its capacity at slice end is its peak *)
    (let words = ref !col_transient in
     Array.iter (fun (b : int array) -> words := !words + Array.length b) vals;
     Array.iter (fun (b : int array) -> words := !words + Array.length b) par;
     Array.iter
       (fun (b : int array) -> words := !words + Array.length b)
       pcol_scratch;
     words := !words + Array.length !cand_scratch;
     words := !words + ((Bytes.length !mask_scratch + 7) / 8);
     note_max bm_column_words !words)
  end

(* scalar twin of the batched interpreter: the same fixed stage order, one
   environment at a time. Checked-batched mode replays it per morsel group
   and compares env for env — matching tuples arrive in increasing
   stored-row order on both sides, so the two enumerations must coincide
   exactly. *)
let iter_envs_fixed_slice p fc ~lo ~hi ~cancel ~fb:_ f =
  if p.feasible && Array.length p.atoms > 0 then begin
    let env = Array.copy p.init_env in
    let fc_atom = p.order.(fc.fc_pos) in
    let rest = Array.of_list (List.tl (fixed_order p fc)) in
    let nrest = Array.length rest in
    let trail = Array.make (Array.length env) 0 in
    let sp = ref 0 in
    let undo_to mark =
      while !sp > mark do
        decr sp;
        env.(trail.(!sp)) <- -1
      done
    in
    let match_tuple ops (t : Tuple.t) =
      let mark = !sp in
      let len = Array.length ops in
      let rec go i =
        if i >= len then true
        else
          let arg = t.(i) in
          match ops.(i) with
          | Check id -> if arg = id then go (i + 1) else false
          | Slot s ->
              let v = env.(s) in
              if v < 0 then begin
                env.(s) <- arg;
                trail.(!sp) <- s;
                incr sp;
                go (i + 1)
              end
              else if v = arg then go (i + 1)
              else false
      in
      if go 0 then true
      else begin
        undo_to mark;
        false
      end
    in
    let rec go k =
      if k >= nrest then f env
      else begin
        let ap = p.atoms.(rest.(k)) in
        let r = ap.a_rel in
        let cost = ref r.Db.nrows and rows = ref [||] and scan = ref true in
        let ops = ap.a_ops in
        for pos = 0 to Array.length ops - 1 do
          let bound =
            match ops.(pos) with Check id -> id | Slot s -> env.(s)
          in
          if bound >= 0 then
            match Hashtbl.find_opt r.Db.index.(pos) bound with
            | Some cell ->
                if !scan || cell.Db.count < !cost then begin
                  cost := cell.Db.count;
                  rows := cell.Db.rows;
                  scan := false
                end
            | None ->
                cost := 0;
                rows := [||];
                scan := false
        done;
        let tuples = r.Db.tuples in
        if !scan then
          for ti = 0 to !cost - 1 do
            let mark = !sp in
            if match_tuple ops tuples.(ti) then begin
              go (k + 1);
              undo_to mark
            end
          done
        else begin
          let rs = !rows in
          for ri = 0 to !cost - 1 do
            let mark = !sp in
            if match_tuple ops tuples.(rs.(ri)) then begin
              go (k + 1);
              undo_to mark
            end
          done
        end
      end
    in
    let ap = p.atoms.(fc_atom) in
    let ops = ap.a_ops and tuples = ap.a_rel.Db.tuples in
    let i = ref lo in
    while !i < hi && not (cancel ()) do
      let ti = if fc.fc_scan then !i else fc.fc_rows.(!i) in
      let mark = !sp in
      if match_tuple ops tuples.(ti) then begin
        go 0;
        undo_to mark
      end;
      incr i
    done
  end

let iter_envs_batched p f =
  if p.feasible then begin
    if Array.length p.atoms = 0 then f (Array.copy p.init_env)
    else
      match select_first p with
      | None -> ()
      | Some fc ->
          let fb = fb_create (Array.length p.atoms) in
          iter_envs_batched_slice p fc ~lo:0 ~hi:fc.fc_count ~cancel:no_cancel
            ~fb f;
          fb_commit p fc fb
  end

(* ------------------------------------------------------------------ *)
(* Checked execution (sanitizer mode)                                   *)
(* ------------------------------------------------------------------ *)

exception Check_failure of string

let check_fail fmt = Format.kasprintf (fun s -> raise (Check_failure s)) fmt

exception Race_failure of string

let race_fail fmt = Format.kasprintf (fun s -> raise (Race_failure s)) fmt

let checked =
  Atomic.make
    (match Sys.getenv_opt "WDPT_ENGINE_CHECKED" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false)

let set_checked b = Atomic.set checked b
let checked_enabled () = Atomic.get checked

(* static plan invariants, the runtime twin of Analysis.Plan_audit: slots in
   range of the environment (E001), interner ids inside the pool (E002),
   instruction and index arity coherent with the stored relation (E003),
   static order sorted by the (ground, selectivity) key (E005), compiled
   database not stale (E006). O(plan size). *)
let sanitize_static p =
  let nenv = Array.length p.init_env in
  let pool = Interner.size p.cdb.Db.pool in
  (* three-way version discipline: the compiled store may legitimately be
     ahead of the plan (it was incrementally extended — existing rows are
     untouched, the plan's candidate sets only grow), but a store that fell
     behind the live database is detached and unsafe. *)
  if p.cdb.Db.db_version < Database.version p.src_db then
    check_fail
      "detached compiled database: store at version %d, database is at %d"
      p.cdb.Db.db_version (Database.version p.src_db);
  if p.compiled_at > p.cdb.Db.db_version then
    check_fail "plan compiled at version %d, ahead of its store at %d"
      p.compiled_at p.cdb.Db.db_version;
  Array.iteri
    (fun ai ap ->
      let r = ap.a_rel in
      if Array.length ap.a_ops <> r.Db.arity || Array.length r.Db.index <> r.Db.arity
      then
        check_fail "atom %d (%s): %d instruction(s), %d index(es), arity %d" ai
          r.Db.name (Array.length ap.a_ops) (Array.length r.Db.index) r.Db.arity;
      Array.iteri
        (fun oi op ->
          match op with
          | Check id ->
              if id < 0 || id >= pool then
                check_fail "atom %d op %d: interner id %d outside pool of %d" ai
                  oi id pool
          | Slot s ->
              if s < 0 || s >= nenv then
                check_fail "atom %d op %d: slot %d outside environment of %d" ai
                  oi s nenv)
        ap.a_ops)
    p.atoms;
  Array.iteri
    (fun s id ->
      if id < -1 || id >= pool then
        check_fail "init slot %d: interner id %d outside pool of %d" s id pool)
    p.init_env;
  let n = Array.length p.atoms in
  if Array.length p.order <> n then
    check_fail "static order covers %d atom(s), plan has %d"
      (Array.length p.order) n;
  let seen = Array.make (max 1 n) false in
  Array.iter
    (fun ai ->
      if ai < 0 || ai >= n || seen.(ai) then
        check_fail "static order is not a permutation of the atoms";
      seen.(ai) <- true)
    p.order;
  (* the order discipline is checked against the *calibrated* key: a plan
     whose order was adapted from observed feedback is sorted by the same
     key the reorder pass used, so zero-calibration plans degrade to the
     static (ground, selectivity) check exactly *)
  let key i =
    let g, s = atom_key p.atoms.(p.order.(i)) in
    (g, s +. calib_of p p.order.(i))
  in
  for i = 0 to n - 2 do
    if compare (key i) (key (i + 1)) > 0 then
      check_fail
        "static order inversion: atom %d (key %d, score %.3f) before atom %d \
         (key %d, score %.3f)"
        p.order.(i) (fst (key i)) (snd (key i))
        p.order.(i + 1)
        (fst (key (i + 1)))
        (snd (key (i + 1)))
  done

(* revalidate one reported solution: every slot an instruction touches is
   bound, and each atom is satisfied by some stored tuple (found through the
   position-0 index, so the cost is one counted cell, not the relation). *)
let verify_solution p env =
  Array.iteri
    (fun ai ap ->
      let ops = ap.a_ops in
      let r = ap.a_rel in
      let expected i =
        match ops.(i) with
        | Check id -> id
        | Slot s ->
            if env.(s) < 0 then
              check_fail "solution leaves slot %d of atom %d unbound" s ai;
            env.(s)
      in
      let matches (t : Tuple.t) =
        let ok = ref true in
        for i = 0 to Array.length ops - 1 do
          if t.(i) <> expected i then ok := false
        done;
        !ok
      in
      let found =
        if Array.length ops = 0 then r.Db.nrows > 0
        else
          match Hashtbl.find_opt r.Db.index.(0) (expected 0) with
          | None -> false
          | Some cell ->
              let rec scan i =
                i < cell.Db.count
                && (matches r.Db.tuples.(cell.Db.rows.(i)) || scan (i + 1))
              in
              scan 0
      in
      if not found then
        check_fail "solution violates atom %d (%s): no matching stored tuple" ai
          r.Db.name)
    p.atoms

(* instrumented twin of [iter_envs_fast_slice]: identical instruction
   selection and enumeration order, with every instruction's effect
   validated — tuple widths, single-write slot discipline, trail
   bracketing — and every reported solution re-verified against the stored
   relations. Each slice validates the static invariants on entry and the
   trail/environment restoration on exit, so a parallel chunked run performs
   the full sequential set of checks per chunk. *)
(* checked slices accept (and ignore) the counter record so the four slice
   interpreters stay interchangeable in [Parallel.slice_interp]; checked
   runs deliberately commit no feedback — their replayed double-execution
   would double-count the genuine run's probes *)
let iter_envs_checked_slice p fc ~lo ~hi ~cancel ~fb:_ f =
  sanitize_static p;
  if p.feasible && Array.length p.atoms > 0 then begin
    let env = Array.copy p.init_env in
    let n = Array.length p.atoms in
    begin
      let remaining = Array.copy p.order in
      let trail = Array.make (Array.length env) 0 in
      let sp = ref 0 in
      let undo_to mark =
        while !sp > mark do
          decr sp;
          let s = trail.(!sp) in
          if env.(s) < 0 then
            check_fail "trail undo of slot %d: slot was not bound" s;
          env.(s) <- -1
        done;
        if !sp <> mark then check_fail "trail not unwound to its mark"
      in
      let match_tuple ai ops (t : Tuple.t) =
        let mark = !sp in
        let len = Array.length ops in
        if Array.length t <> len then
          check_fail "atom %d: stored tuple width %d, %d instruction(s)" ai
            (Array.length t) len;
        let rec go i =
          if i >= len then true
          else
            let arg = t.(i) in
            match ops.(i) with
            | Check id -> if arg = id then go (i + 1) else false
            | Slot s ->
                let v = env.(s) in
                if v < 0 then begin
                  if !sp >= Array.length trail then
                    check_fail "trail overflow writing slot %d" s;
                  env.(s) <- arg;
                  trail.(!sp) <- s;
                  incr sp;
                  go (i + 1)
                end
                else if v = arg then go (i + 1)
                else false
        in
        if go 0 then true
        else begin
          undo_to mark;
          false
        end
      in
      let est_cost = ref 0 and est_rows = ref [||] and est_scan = ref false in
      let estimate ap =
        let r = ap.a_rel in
        est_cost := r.Db.nrows;
        est_rows := [||];
        est_scan := true;
        let ops = ap.a_ops in
        for pos = 0 to Array.length ops - 1 do
          let bound =
            match ops.(pos) with
            | Check id -> id
            | Slot s -> env.(s)
          in
          if bound >= 0 then
            match Hashtbl.find_opt r.Db.index.(pos) bound with
            | Some cell ->
                if cell.Db.count > Array.length cell.Db.rows then
                  check_fail "index cell of %s pos %d: count %d, capacity %d"
                    r.Db.name pos cell.Db.count (Array.length cell.Db.rows);
                if !est_scan || cell.Db.count < !est_cost then begin
                  est_cost := cell.Db.count;
                  est_rows := cell.Db.rows;
                  est_scan := false
                end
            | None -> begin
                est_cost := 0;
                est_rows := [||];
                est_scan := false
              end
        done
      in
      let rec go k =
        if k = 0 then begin
          verify_solution p env;
          f env
        end
        else begin
          estimate p.atoms.(remaining.(0));
          let bi = ref 0 and bcost = ref !est_cost in
          let brows = ref !est_rows and bscan = ref !est_scan in
          for j = 1 to k - 1 do
            estimate p.atoms.(remaining.(j));
            if !est_cost < !bcost then begin
              bi := j;
              bcost := !est_cost;
              brows := !est_rows;
              bscan := !est_scan
            end
          done;
          let slot_j = !bi in
          let ai = remaining.(slot_j) in
          remaining.(slot_j) <- remaining.(k - 1);
          remaining.(k - 1) <- ai;
          let ap = p.atoms.(ai) in
          let ops = ap.a_ops and tuples = ap.a_rel.Db.tuples in
          if !bscan then
            for ti = 0 to !bcost - 1 do
              let mark = !sp in
              if match_tuple ai ops tuples.(ti) then begin
                go (k - 1);
                undo_to mark
              end
            done
          else begin
            let rows = !brows in
            for ri = 0 to !bcost - 1 do
              let mark = !sp in
              if match_tuple ai ops tuples.(rows.(ri)) then begin
                go (k - 1);
                undo_to mark
              end
            done
          end;
          remaining.(k - 1) <- remaining.(slot_j);
          remaining.(slot_j) <- ai
        end
      in
      let ai = remaining.(fc.fc_pos) in
      remaining.(fc.fc_pos) <- remaining.(n - 1);
      remaining.(n - 1) <- ai;
      let ap = p.atoms.(ai) in
      let ops = ap.a_ops and tuples = ap.a_rel.Db.tuples in
      let i = ref lo in
      while !i < hi && not (cancel ()) do
        let ti = if fc.fc_scan then !i else fc.fc_rows.(!i) in
        let mark = !sp in
        if match_tuple ai ops tuples.(ti) then begin
          go (n - 1);
          undo_to mark
        end;
        incr i
      done;
      if !sp <> 0 then check_fail "trail not empty after enumeration";
      Array.iteri
        (fun s v ->
          if v <> p.init_env.(s) then
            check_fail "environment slot %d not restored after enumeration" s)
        env
    end
  end

let iter_envs_checked p f =
  if Array.length p.atoms = 0 || not p.feasible then begin
    sanitize_static p;
    if p.feasible then f (Array.copy p.init_env)
  end
  else
    match select_first p with
    | None -> ()
    | Some fc ->
        iter_envs_checked_slice p fc ~lo:0 ~hi:fc.fc_count ~cancel:no_cancel
          ~fb:(fb_create 0) f

(* checked-batched execution: every morsel group's batched effects are
   validated env-for-env against the scalar fixed-order twin — same fixed
   stage order, same enumeration order — and every solution is re-verified
   against the stored relations before the caller sees it. A mismatch in
   either direction (a dropped or an extra batched solution, or any slot
   disagreement) is a Check_failure. *)
let iter_envs_batched_checked_slice p fc ~lo ~hi ~cancel ~fb:_ f =
  sanitize_static p;
  if p.feasible && Array.length p.atoms > 0 then begin
    let group = morsel_rows () in
    (* scratch record: the checked replay runs the batched pipeline twice
       over, so its counters are deliberately discarded *)
    let scratch = fb_create (Array.length p.atoms) in
    let glo = ref lo in
    while !glo < hi && not (cancel ()) do
      let ghi = min hi (!glo + group) in
      let buf = ref [] in
      iter_envs_batched_slice p fc ~lo:!glo ~hi:ghi ~cancel:no_cancel
        ~fb:scratch (fun env -> buf := Array.copy env :: !buf);
      let batched = Array.of_list (List.rev !buf) in
      note_max bm_replay_rows (Array.length batched);
      let k = ref 0 in
      iter_envs_fixed_slice p fc ~lo:!glo ~hi:ghi ~cancel:no_cancel
        ~fb:scratch (fun env ->
          if !k >= Array.length batched then
            check_fail
              "batched run dropped solution %d of the scalar fixed-order twin"
              !k
          else begin
            let b = batched.(!k) in
            Array.iteri
              (fun s v ->
                if b.(s) <> v then
                  check_fail
                    "batched solution %d differs from the scalar twin at slot \
                     %d (%d vs %d)"
                    !k s b.(s) v)
              env;
            verify_solution p b;
            incr k
          end);
      if !k <> Array.length batched then
        check_fail "batched run produced %d extra solution(s) beyond the twin"
          (Array.length batched - !k);
      Array.iter f batched;
      glo := ghi
    done
  end

let iter_envs_batched_checked p f =
  if Array.length p.atoms = 0 || not p.feasible then begin
    sanitize_static p;
    if p.feasible then f (Array.copy p.init_env)
  end
  else
    match select_first p with
    | None -> ()
    | Some fc ->
        iter_envs_batched_checked_slice p fc ~lo:0 ~hi:fc.fc_count
          ~cancel:no_cancel ~fb:(fb_create 0) f

(* the sequential dispatch; the public [iter_envs] below additionally
   partitions across domains when enabled *)
let iter_envs_seq p f =
  match (Atomic.get batched_flag, Atomic.get checked) with
  | true, true -> iter_envs_batched_checked p f
  | true, false -> iter_envs_batched p f
  | false, true -> iter_envs_checked p f
  | false, false -> iter_envs_fast p f

(* ------------------------------------------------------------------ *)
(* Domain-parallel enumeration                                          *)
(* ------------------------------------------------------------------ *)

module Parallel = struct
  let domains_flag =
    Atomic.make
      (match Sys.getenv_opt "WDPT_ENGINE_DOMAINS" with
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some n when n >= 1 -> min n 64
          | _ -> 1)
      | None -> 1)

  let set_domains n = Atomic.set domains_flag (max 1 (min n 64))
  let domains () = Atomic.get domains_flag

  (* below this many top-level candidate rows a region is not worth the
     Domain.spawn latency; tests lower it to exercise the parallel path on
     small instances *)
  let min_rows_flag = Atomic.make 128
  let set_min_rows n = Atomic.set min_rows_flag (max 1 n)
  let min_rows () = Atomic.get min_rows_flag

  (* one region at a time: a callback that re-enters the engine while a
     region is running (workers included) falls back to the sequential
     path instead of nesting domain pools *)
  let in_region = Atomic.make false

  (* morsel size: re-exported here because it is the unit of parallel work
     distribution (the batched interpreter reads the same flag for its group
     width) *)
  let set_morsel_rows = set_morsel_rows
  let morsel_rows = morsel_rows

  (* Fixed-size morsels: the unit of work pulled off the dispatch counter.
     The chunk size is the configured morsel cap, lowered for small regions
     so the pool still sees ~4 waves per domain (the old 4×pool target); a
     fat candidate range therefore splits into ceil(count/morsel) chunks
     instead of 4×pool huge ones — the single-huge-chunk skew fix. *)
  let chunk_size_for nd count =
    let target = (count + (4 * nd) - 1) / (4 * nd) in
    max 1 (min (morsel_rows ()) target)

  let nchunks_for nd count =
    if count <= 0 then 1
    else
      let s = chunk_size_for nd count in
      (count + s - 1) / s

  (* [i]th of [nchunks] fixed-stride contiguous slices of [0, count): every
     chunk spans ceil(count/nchunks) rows except a possibly-short last one —
     the uniform-stride morsel shape E016 audits. (For any [nchunks]
     produced by [nchunks_for] the stride round-trips exactly, so no chunk
     is empty.) *)
  let chunk_bounds count nchunks =
    let stride = if nchunks <= 0 then 0 else (count + nchunks - 1) / nchunks in
    Array.init nchunks (fun i ->
        (min count (i * stride), min count ((i + 1) * stride)))

  (* ---- data-race sanitizer ----------------------------------------- *)

  (* When enabled, every parallel region logs its shared-location accesses
     into per-chunk event buffers and validates, after the join, that no
     two unordered conflicting accesses occurred. The happens-before order
     of a region is fork -> each chunk -> join: chunks carry independent
     logical clocks with no cross edges (a chunk never waits on another),
     so in vector-clock terms two accesses to the same location from
     different chunks are always unordered — a race whenever the location
     is non-atomic and at least one access is a write. Atomic locations
     are exempt: the hardware totally orders them. *)
  let race_flag =
    Atomic.make
      (match Sys.getenv_opt "WDPT_ENGINE_TSAN" with
      | Some ("1" | "true" | "yes") -> true
      | _ -> false)

  let set_race_check b = Atomic.set race_flag b
  let race_check_enabled () = Atomic.get race_flag

  (* test-only seeded fault: each count/enum chunk additionally stores into
     a peer chunk's cell (value-neutral), exactly the corrupted-reducer
     shape the sanitizer must catch *)
  let fault_flag = Atomic.make false
  let set_fault_injection b = Atomic.set fault_flag b
  let fault_injection_enabled () = Atomic.get fault_flag

  (* the shared locations of a region, by role; [Chunk_cell i] stands for
     chunk [i]'s slot of the per-chunk result array (buffer or count cell),
     which only chunk [i] may write *)
  type shared_loc =
    | Next_counter
    | Error_slot
    | Cancel_flag
    | Chunk_cell of int
    | Column_block of int
        (* chunk [i]'s batched slot columns, logged as one whole-column
           access per (location, kind) rather than per lane *)

  let loc_atomic = function
    | Next_counter | Error_slot | Cancel_flag -> true
    | Chunk_cell _ | Column_block _ -> false

  let loc_name = function
    | Next_counter -> "chunk-dispatch-counter"
    | Error_slot -> "error-slot"
    | Cancel_flag -> "cancel-flag"
    | Chunk_cell i -> Printf.sprintf "chunk cell %d" i
    | Column_block i -> Printf.sprintf "batch columns of chunk %d" i

  (* One access record per (location, kind) a chunk performs: the logical
     clock of the first access plus a repetition count, so logging stays
     O(distinct locations) even for locations polled once per candidate row
     (the cancel flag is). Each chunk mutates only its own cell of
     [tr_events]/[tr_clock] — the sanitizer introduces no shared writes of
     its own. *)
  type access = {
    ac_loc : shared_loc;
    ac_write : bool;
    ac_chunk : int;
    ac_clock : int;
    mutable ac_count : int;
  }

  type trace = { tr_events : access list array; tr_clock : int array }

  let make_trace nchunks =
    { tr_events = Array.make nchunks []; tr_clock = Array.make nchunks 0 }

  let log_access tr chunk loc ~write =
    match
      List.find_opt
        (fun a -> a.ac_loc = loc && a.ac_write = write)
        tr.tr_events.(chunk)
    with
    | Some a -> a.ac_count <- a.ac_count + 1
    | None ->
        let c = tr.tr_clock.(chunk) in
        tr.tr_clock.(chunk) <- c + 1;
        tr.tr_events.(chunk) <-
          { ac_loc = loc; ac_write = write; ac_chunk = chunk; ac_clock = c;
            ac_count = 1 }
          :: tr.tr_events.(chunk)

  type race_stats = { rs_regions : int; rs_events : int; rs_races : int }

  let regions_checked = Atomic.make 0
  let events_logged = Atomic.make 0
  let races_found = Atomic.make 0

  let race_stats () =
    { rs_regions = Atomic.get regions_checked;
      rs_events = Atomic.get events_logged;
      rs_races = Atomic.get races_found }

  let reset_race_stats () =
    Atomic.set regions_checked 0;
    Atomic.set events_logged 0;
    Atomic.set races_found 0

  let rec find_conflict = function
    | [] -> None
    | a :: rest -> (
        match
          List.find_opt
            (fun b ->
              a.ac_loc = b.ac_loc
              && (not (loc_atomic a.ac_loc))
              && a.ac_chunk <> b.ac_chunk
              && (a.ac_write || b.ac_write))
            rest
        with
        | Some b -> Some (a, b)
        | None -> find_conflict rest)

  (* Runs on the calling domain after every worker has joined, so reading
     the per-chunk buffers is ordered-after every log. *)
  let validate_trace tr =
    let all = List.concat (Array.to_list tr.tr_events) in
    Atomic.incr regions_checked;
    ignore (Atomic.fetch_and_add events_logged (List.length all));
    match find_conflict all with
    | None -> ()
    | Some (a, b) ->
        Atomic.incr races_found;
        let kind x = if x.ac_write then "write" else "read" in
        race_fail
          "data race on %s: unordered %s by chunk %d (clock %d) and %s by \
           chunk %d (clock %d)"
          (loc_name a.ac_loc) (kind a) a.ac_chunk a.ac_clock (kind b) b.ac_chunk
          b.ac_clock

  (* Drain chunk ids [0, nchunks) on [nd] domains — the calling domain
     participates, so [nd - 1] are spawned — pulling work off a shared
     atomic counter. The first exception wins, stops the drain on every
     domain, and is re-raised here after all domains are joined. With a
     trace, the dispatch traffic itself (counter bump, error-slot poll and
     store) is logged like any other shared access. *)
  let run_chunks ?trace ~nd ~nchunks work =
    let next = Atomic.make 0 in
    let err = Atomic.make None in
    let log chunk loc ~write =
      match trace with
      | Some tr -> log_access tr chunk loc ~write
      | None -> ()
    in
    let drain () =
      let running = ref true in
      while !running do
        let i = Atomic.fetch_and_add next 1 in
        if i >= nchunks || Option.is_some (Atomic.get err) then running := false
        else begin
          log i Next_counter ~write:true;
          log i Error_slot ~write:false;
          try work i
          with e ->
            log i Error_slot ~write:true;
            ignore (Atomic.compare_and_set err None (Some e))
        end
      done
    in
    let workers =
      List.init (min (nd - 1) (nchunks - 1)) (fun _ -> Domain.spawn drain)
    in
    drain ();
    List.iter Domain.join workers;
    match Atomic.get err with Some e -> raise e | None -> ()

  (* Enter a region if profitable: [None] (callers run sequentially) when
     the pool size is 1, the plan is trivial, the top-level candidate count
     is below the row threshold, or a region is already running. On [Some]
     the caller owns the region and must [leave] (via Fun.protect). *)
  let enter p =
    let nd = Atomic.get domains_flag in
    if nd <= 1 || (not p.feasible) || Array.length p.atoms = 0 then None
    else
      match select_first p with
      | None -> None
      | Some fc ->
          if fc.fc_count < Atomic.get min_rows_flag then None
          else if not (Atomic.compare_and_set in_region false true) then None
          else Some (nd, fc)

  let leave () = Atomic.set in_region false

  (* the slice interpreter is chosen once per region from the batched and
     checked flags and shared by every worker: a concurrent
     [set_checked]/[set_batched] cannot tear a run into mixed chunks *)
  let slice_interp () =
    match (Atomic.get batched_flag, Atomic.get checked) with
    | true, true -> iter_envs_batched_checked_slice
    | true, false -> iter_envs_batched_slice
    | false, true -> iter_envs_checked_slice
    | false, false -> iter_envs_fast_slice

  (* [iter p f]: every satisfying environment, in an order identical to the
     sequential enumeration. Chunks buffer copies of their solutions; the
     buffers are replayed on the calling domain in chunk order (chunks are
     contiguous slices of the top-level candidate sequence, so chunk-order
     concatenation IS sequential order). [f] runs outside the region and
     may re-enter the engine. *)
  let iter p f =
    match enter p with
    | None -> iter_envs_seq p f
    | Some (nd, fc) ->
        let interp = slice_interp () in
        let checked_run = Atomic.get checked in
        let nchunks = nchunks_for nd fc.fc_count in
        let bounds = chunk_bounds fc.fc_count nchunks in
        let buffers = Array.make nchunks [] in
        (* chunk-local counter records: chunk [i] writes only [fbs.(i)]
           (the Chunk_cell i owner-only discipline); the coordinator merges
           them after the join, so the merged record equals the sequential
           run's exactly — every counter is a per-candidate-row property *)
        let fbs =
          Array.init nchunks (fun _ -> fb_create (Array.length p.atoms))
        in
        let trace =
          if Atomic.get race_flag then Some (make_trace nchunks) else None
        in
        let inject = Atomic.get fault_flag in
        let log i loc ~write =
          match trace with
          | Some tr -> log_access tr i loc ~write
          | None -> ()
        in
        let batched = Atomic.get batched_flag in
        Fun.protect ~finally:leave (fun () ->
            run_chunks ?trace ~nd ~nchunks (fun i ->
                let lo, hi = bounds.(i) in
                let buf = ref [] in
                if batched then log i (Column_block i) ~write:true;
                interp p fc ~lo ~hi ~cancel:no_cancel ~fb:fbs.(i) (fun env ->
                    buf := Array.copy env :: !buf);
                log i (Chunk_cell i) ~write:true;
                buffers.(i) <- List.rev !buf;
                note_max bm_replay_rows (List.length buffers.(i));
                if inject && nchunks > 1 then begin
                  (* seeded fault: value-neutral store into a peer's cell *)
                  let j = (i + 1) mod nchunks in
                  log i (Chunk_cell j) ~write:true;
                  buffers.(j) <- buffers.(j)
                end);
            Option.iter validate_trace trace);
        if not checked_run then begin
          let merged = fb_create (Array.length p.atoms) in
          Array.iter (fb_add merged) fbs;
          fb_commit p fc merged
        end;
        Array.iter (List.iter f) buffers

  (* [count p]: per-chunk counts, summed. *)
  let count p =
    match enter p with
    | None ->
        let n = ref 0 in
        iter_envs_seq p (fun _ -> incr n);
        !n
    | Some (nd, fc) ->
        let interp = slice_interp () in
        let checked_run = Atomic.get checked in
        let nchunks = nchunks_for nd fc.fc_count in
        let bounds = chunk_bounds fc.fc_count nchunks in
        let counts = Array.make nchunks 0 in
        let fbs =
          Array.init nchunks (fun _ -> fb_create (Array.length p.atoms))
        in
        let trace =
          if Atomic.get race_flag then Some (make_trace nchunks) else None
        in
        let inject = Atomic.get fault_flag in
        let log i loc ~write =
          match trace with
          | Some tr -> log_access tr i loc ~write
          | None -> ()
        in
        let batched = Atomic.get batched_flag in
        Fun.protect ~finally:leave (fun () ->
            run_chunks ?trace ~nd ~nchunks (fun i ->
                let lo, hi = bounds.(i) in
                let n = ref 0 in
                if batched then log i (Column_block i) ~write:true;
                interp p fc ~lo ~hi ~cancel:no_cancel ~fb:fbs.(i) (fun _ ->
                    incr n);
                log i (Chunk_cell i) ~write:true;
                counts.(i) <- !n;
                if inject && nchunks > 1 then begin
                  (* seeded fault: value-neutral store into a peer's cell *)
                  let j = (i + 1) mod nchunks in
                  log i (Chunk_cell j) ~write:true;
                  counts.(j) <- counts.(j)
                end);
            Option.iter validate_trace trace);
        if not checked_run then begin
          let merged = fb_create (Array.length p.atoms) in
          Array.iter (fb_add merged) fbs;
          fb_commit p fc merged
        end;
        Array.fold_left ( + ) 0 counts

  exception Hit

  (* [sat p]: the first witness on any domain raises the shared atomic flag;
     peers poll it between top-level candidates and stop early.

     First-match probes stay tuple-at-a-time even in batched mode: a
     vectorized pipeline materializes a whole morsel group (and builds its
     probe tables) before its first result, which is exactly wrong for a
     short-circuit that usually stops within a handful of candidates. *)
  let sat_interp () =
    if Atomic.get checked then iter_envs_checked_slice
    else iter_envs_fast_slice

  let sat p =
    match enter p with
    | None -> (
        try
          (if Atomic.get checked then iter_envs_checked else iter_envs_fast)
            p
            (fun _ -> raise Hit);
          false
        with Hit -> true)
    | Some (nd, fc) ->
        let interp = sat_interp () in
        let nchunks = nchunks_for nd fc.fc_count in
        let bounds = chunk_bounds fc.fc_count nchunks in
        let found = Atomic.make false in
        let trace =
          if Atomic.get race_flag then Some (make_trace nchunks) else None
        in
        let log i loc ~write =
          match trace with
          | Some tr -> log_access tr i loc ~write
          | None -> ()
        in
        Fun.protect ~finally:leave (fun () ->
            run_chunks ?trace ~nd ~nchunks (fun i ->
                let cancel () =
                  log i Cancel_flag ~write:false;
                  Atomic.get found
                in
                if not (cancel ()) then begin
                  let lo, hi = bounds.(i) in
                  (* a correctly sized but discarded record: parallel sat
                     commits no feedback — cancellation truncates the probe
                     stream nondeterministically across pool sizes *)
                  try
                    interp p fc ~lo ~hi ~cancel
                      ~fb:(fb_create (Array.length p.atoms)) (fun _ ->
                        raise Hit)
                  with Hit ->
                    log i Cancel_flag ~write:true;
                    Atomic.set found true
                end);
            Option.iter validate_trace trace);
        Atomic.get found

  (* the partitioning decision for a plan under the current configuration,
     as plain data for Analysis.Cost / the explain CLI *)
  type decision = {
    d_domains : int;  (* configured pool size *)
    d_atom : int option;  (* top-level atom (plan index), if any *)
    d_rows : int;  (* top-level candidate rows *)
    d_chunks : int;  (* 1 = sequential *)
    d_chunk_rows : int;  (* estimated rows per chunk *)
    d_reason : string;
  }

  let decision p =
    let nd = Atomic.get domains_flag in
    let mr = Atomic.get min_rows_flag in
    match select_first p with
    | None ->
        { d_domains = nd;
          d_atom = None;
          d_rows = 0;
          d_chunks = 1;
          d_chunk_rows = 0;
          d_reason =
            (if not p.feasible then "sequential: infeasible plan"
             else "sequential: no atoms") }
    | Some fc ->
        let atom = Some p.order.(fc.fc_pos) in
        if nd <= 1 then
          { d_domains = nd;
            d_atom = atom;
            d_rows = fc.fc_count;
            d_chunks = 1;
            d_chunk_rows = fc.fc_count;
            d_reason = "sequential: pool size 1" }
        else if fc.fc_count < mr then
          { d_domains = nd;
            d_atom = atom;
            d_rows = fc.fc_count;
            d_chunks = 1;
            d_chunk_rows = fc.fc_count;
            d_reason =
              Printf.sprintf
                "sequential: %d candidate row(s) under the %d-row threshold"
                fc.fc_count mr }
        else
          let nchunks = nchunks_for nd fc.fc_count in
          { d_domains = nd;
            d_atom = atom;
            d_rows = fc.fc_count;
            d_chunks = nchunks;
            d_chunk_rows = (fc.fc_count + nchunks - 1) / nchunks;
            d_reason =
              Printf.sprintf
                "parallel: %d morsel(s) of up to %d row(s) on %d domain(s)"
                nchunks
                (chunk_size_for nd fc.fc_count)
                nd }
end

let iter_envs = Parallel.iter
let count_envs = Parallel.count
let sat = Parallel.sat

(* ------------------------------------------------------------------ *)
(* Plan inspection                                                      *)
(* ------------------------------------------------------------------ *)

module Inspect = struct
  type atom_view = {
    a_index : int;
    a_atom : Atom.t;
    a_rel : string;
    a_arity : int;
    a_index_arity : int;
    a_rows : int;
    a_dcounts : int array;
    a_ranges : (int * int) array;
    a_ops : op array;
    a_calib : float;  (* feedback calibration, log10; 0. on fresh plans *)
  }

  type view = {
    i_feasible : bool;
    i_slots : string array;
    i_pool : int;
    i_env : int array;
    i_atoms : atom_view array;
    i_order : int array;
    i_compiled_version : int;
    i_store_version : int;
    i_live_version : int;
  }

  let plan (p : t) =
    let src = Array.of_list p.src_atoms in
    let atoms =
      Array.mapi
        (fun i (ap : atom_plan) ->
          { a_index = i;
            a_atom = src.(i);
            a_rel = ap.a_rel.Db.name;
            a_arity = ap.a_rel.Db.arity;
            a_index_arity = Array.length ap.a_rel.Db.index;
            a_rows = ap.a_rel.Db.nrows;
            a_dcounts = Array.copy ap.a_rel.Db.dcounts;
            a_ranges = Array.copy ap.a_rel.Db.ranges;
            a_ops = Array.copy ap.a_ops;
            a_calib = calib_of p i })
        p.atoms
    in
    { i_feasible = p.feasible;
      i_slots = Array.init (Interner.size p.vars) (Interner.get p.vars);
      i_pool = Interner.size p.cdb.Db.pool;
      i_env = Array.copy p.init_env;
      i_atoms = atoms;
      i_order = Array.copy p.order;
      i_compiled_version = p.compiled_at;
      i_store_version = p.cdb.Db.db_version;
      i_live_version = Database.version p.src_db }

  (* ---- the cardinality-feedback view, as plain data ----------------- *)

  type feedback_atom = {
    f_atom : int;        (* plan atom index *)
    f_contexts : int;    (* probe contexts this atom was selected in *)
    f_probed : int;      (* candidate rows probed across those contexts *)
    f_survived : int;    (* rows surviving all checks (matches) *)
    f_rows : int;        (* stored relation rows, for the sound E026 bound *)
    f_score : float;     (* static selectivity estimate, log10 *)
    f_calib : float;     (* feedback calibration applied on top, log10 *)
  }

  type feedback_view = {
    f_atoms : feedback_atom array;
    f_runs : int;            (* completed (uncancelled) enumerations *)
    f_top : int option;      (* the top-level atom select_first would choose *)
    f_threshold : float;     (* drift threshold in force, log10 decades *)
    f_min_probed : int;      (* evidence floor in force *)
    f_costed_at : int;       (* stats epoch the calibration was costed at *)
    f_compiled_version : int;
    f_store_version : int;
    f_live_version : int;
  }

  (* The counters are read from the plan's accumulator (zero if the plan
     never ran); estimates come from the same [atom_score] the reorder pass
     sorts by, so the drift audit compares exactly what chose the order
     against exactly what the run observed. *)
  let feedback (p : t) =
    let get arr i = if i < Array.length arr then arr.(i) else 0 in
    let atoms =
      Array.mapi
        (fun i (ap : atom_plan) ->
          { f_atom = i;
            f_contexts =
              (match p.feedback with
              | Some fb -> get fb.fb_contexts i
              | None -> 0);
            f_probed =
              (match p.feedback with
              | Some fb -> get fb.fb_probed i
              | None -> 0);
            f_survived =
              (match p.feedback with
              | Some fb -> get fb.fb_survived i
              | None -> 0);
            f_rows = ap.a_rel.Db.nrows;
            f_score = atom_score ap;
            f_calib = calib_of p i })
        p.atoms
    in
    { f_atoms = atoms;
      f_runs = (match p.feedback with Some fb -> fb.fb_runs | None -> 0);
      f_top =
        (match select_first p with
        | None -> None
        | Some fc -> Some p.order.(fc.fc_pos));
      f_threshold = drift_threshold ();
      f_min_probed = drift_min_probed ();
      f_costed_at = p.costed_at;
      f_compiled_version = p.compiled_at;
      f_store_version = p.cdb.Db.db_version;
      f_live_version = Database.version p.src_db }

  (* ---- the parallel execution plan, as plain data ------------------ *)

  type shared_kind =
    | Atomic_cell
    | Chunk_local

  type shared_view = { s_name : string; s_kind : shared_kind }

  type write_view = { w_site : string; w_target : string; w_owner_only : bool }

  type reducer_view = {
    r_primitive : string;
    r_merge : string;
    r_ordered : bool;
    r_order_preserving : bool;
    r_total : bool;
    r_cancelling : bool;
  }

  type par_view = {
    pv_domains : int;
    pv_min_rows : int;
    pv_morsel_rows : int;
    pv_atom : int option;
    pv_rows : int;
    pv_sequential : bool;
    pv_reason : string;
    pv_chunks : (int * int) array;
    pv_reducers : reducer_view array;
    pv_shared : shared_view array;
    pv_writes : write_view array;
    pv_snapshots : (int * int * int) array;
  }

  (* The genuine view is re-derived from the same pure functions the runtime
     partitions with (select_first via Parallel.decision, nchunks_for,
     chunk_bounds), so auditing it certifies the decision the region will
     actually take — not a description that could drift. *)
  let par (p : t) =
    let d = Parallel.decision p in
    let chunks = Parallel.chunk_bounds d.Parallel.d_rows d.Parallel.d_chunks in
    let reducers =
      [| { r_primitive = "enum";
           r_merge = "chunk-order-concat";
           r_ordered = true;
           r_order_preserving = true;
           r_total = true;
           r_cancelling = false };
         { r_primitive = "count";
           r_merge = "sum";
           r_ordered = false;
           r_order_preserving = false;
           r_total = true;
           r_cancelling = false };
         { r_primitive = "sat";
           r_merge = "first-witness";
           r_ordered = false;
           r_order_preserving = false;
           r_total = false;
           r_cancelling = true } |]
    in
    let shared =
      [| { s_name = "chunk-dispatch-counter"; s_kind = Atomic_cell };
         { s_name = "error-slot"; s_kind = Atomic_cell };
         { s_name = "cancel-flag"; s_kind = Atomic_cell };
         { s_name = "region-guard"; s_kind = Atomic_cell };
         { s_name = "chunk-buffers"; s_kind = Chunk_local };
         { s_name = "chunk-counts"; s_kind = Chunk_local };
         { s_name = "feedback-cells"; s_kind = Chunk_local } |]
    in
    (* the batched interpreter's columnar state is chunk-local: each chunk
       allocates and writes only its own slot columns *)
    let shared =
      if batched_enabled () then
        Array.append shared
          [| { s_name = "batch-columns"; s_kind = Chunk_local } |]
      else shared
    in
    let writes =
      [ { w_site = "chunk-dispatch";
          w_target = "chunk-dispatch-counter";
          w_owner_only = false };
        { w_site = "first-failure"; w_target = "error-slot"; w_owner_only = false };
        { w_site = "sat-witness"; w_target = "cancel-flag"; w_owner_only = false };
        { w_site = "region-enter-leave";
          w_target = "region-guard";
          w_owner_only = false };
        { w_site = "enum-solution-buffer";
          w_target = "chunk-buffers";
          w_owner_only = true };
        { w_site = "count-accumulate";
          w_target = "chunk-counts";
          w_owner_only = true };
        { w_site = "feedback-accumulate";
          w_target = "feedback-cells";
          w_owner_only = true } ]
    in
    let writes =
      if batched_enabled () then
        writes
        @ [ { w_site = "batch-column-write";
              w_target = "batch-columns";
              w_owner_only = true } ]
      else writes
    in
    (* the seeded fault is an honest part of the runtime while enabled, so
       the static view declares its cross-chunk store — and E014 flags it *)
    let writes =
      if Parallel.fault_injection_enabled () then
        writes
        @ [ { w_site = "fault-injection";
              w_target = "chunk-counts";
              w_owner_only = false } ]
      else writes
    in
    { pv_domains = d.Parallel.d_domains;
      pv_min_rows = Parallel.min_rows ();
      pv_morsel_rows = Parallel.morsel_rows ();
      pv_atom = d.Parallel.d_atom;
      pv_rows = d.Parallel.d_rows;
      pv_sequential = d.Parallel.d_chunks <= 1;
      pv_reason = d.Parallel.d_reason;
      pv_chunks = chunks;
      pv_reducers = reducers;
      pv_shared = shared;
      pv_writes = Array.of_list writes;
      pv_snapshots =
        Array.make d.Parallel.d_domains
          (p.compiled_at, p.cdb.Db.db_version, Database.version p.src_db) }

  (* ---- the batched execution layout, as plain data ------------------ *)

  type batch_stage_view = {
    bv_atom : int;                  (* plan atom index *)
    bv_checks : (int * int) array;  (* (position, interned id) *)
    bv_cols : (int * int) array;    (* (position, slot) column comparisons *)
    bv_binds : (int * int) array;   (* (position, slot) column writes *)
    bv_dups : (int * int) array;    (* (position, earlier position) *)
    bv_filter : bool;               (* mask-narrowing stage, no new columns *)
  }

  type batch_view = {
    b_enabled : bool;          (* current value of the batch flag *)
    b_morsel_rows : int;       (* configured batch group width *)
    b_stages : batch_stage_view array;  (* fixed stage order *)
    b_columns : (int * string) array;
        (* the columnar layout: every stage-bound slot and its variable *)
    b_groups : int;            (* morsel groups over the top-level range *)
  }

  (* Re-derived from [batch_stages], the same pure function the batched
     interpreter compiles its pipeline with — like [par], inspecting it
     certifies the layout the run will actually use. *)
  let batch (p : t) =
    let enabled = batched_enabled () in
    let m = Parallel.morsel_rows () in
    match select_first p with
    | None ->
        { b_enabled = enabled;
          b_morsel_rows = m;
          b_stages = [||];
          b_columns = [||];
          b_groups = 0 }
    | Some fc ->
        let stages = batch_stages p fc in
        let columns =
          List.concat_map
            (fun st ->
              List.map
                (fun (_, s) -> (s, Interner.get p.vars s))
                (Array.to_list st.bs_binds))
            stages
        in
        { b_enabled = enabled;
          b_morsel_rows = m;
          b_stages =
            Array.of_list
              (List.map
                 (fun st ->
                   { bv_atom = st.bs_atom;
                     bv_checks = Array.copy st.bs_checks;
                     bv_cols = Array.copy st.bs_cols;
                     bv_binds = Array.copy st.bs_binds;
                     bv_dups = Array.copy st.bs_dups;
                     bv_filter = st.bs_filter })
                 stages);
          b_columns = Array.of_list columns;
          b_groups = (fc.fc_count + m - 1) / m }

  (* the optimization trail: (view of the plan before each pass, certificate)
     per stage, plus the final view — everything Analysis.Equiv needs *)
  let trail (p : t) =
    match p.provenance with
    | Compiled -> ([], plan p)
    | Optimized { stages } ->
        (List.map (fun (q, c) -> (plan q, c)) stages, plan p)

  (* the plans before each pass, aligned with [trail]'s stages; used to
     build probes for ground-drop justifications *)
  let stage_plans (p : t) =
    match p.provenance with
    | Compiled -> []
    | Optimized { stages } -> List.map fst stages

  (* the unoptimized original: what the engine falls back to when a
     certificate fails verification *)
  let base (p : t) =
    match p.provenance with
    | Compiled -> p
    | Optimized { stages } -> (
        match stages with (q, _) :: _ -> q | [] -> p)

  (* [row_matches p ~atom ~row]: the stored tuple [row] of [atom]'s relation
     satisfies the atom's (all-Check) instructions. O(arity); false for any
     out-of-range input or any atom that still reads a slot. This is the
     probe Analysis.Equiv uses to confirm Ground_matched drop claims. *)
  let row_matches (p : t) ~atom ~row =
    atom >= 0
    && atom < Array.length p.atoms
    &&
    let ap = p.atoms.(atom) in
    let tuples = ap.a_rel.Db.tuples in
    row >= 0
    && row < ap.a_rel.Db.nrows
    && Array.length tuples.(row) = Array.length ap.a_ops
    &&
    let t = tuples.(row) in
    let ok = ref true in
    Array.iteri
      (fun i op ->
        match op with
        | Check id -> if t.(i) <> id then ok := false
        | Slot _ -> ok := false)
      ap.a_ops;
    !ok
end

(* ------------------------------------------------------------------ *)
(* Boundary conversions and the public evaluator API                    *)
(* ------------------------------------------------------------------ *)

(* conversion table computed once per plan: the slots to read back and the
   variable names they decode to (init-bound names are never overwritten) *)
let conversion_table p =
  let out = ref [] in
  Interner.iter
    (fun slot x -> if not (Mapping.mem x p.init) then out := (slot, x) :: !out)
    p.vars;
  Array.of_list !out

let mapping_of_env_with p table env =
  let m = ref p.init in
  Array.iter
    (fun (slot, x) ->
      if env.(slot) >= 0 then m := Mapping.add x (value_of p env.(slot)) !m)
    table;
  !m

let mapping_of_env p env = mapping_of_env_with p (conversion_table p) env

let iter_homomorphisms db atoms ~init f =
  let p = compile db atoms ~init in
  let table = conversion_table p in
  iter_envs p (fun env -> f (mapping_of_env_with p table env))

let homomorphisms db atoms ~init =
  let out = ref [] in
  iter_homomorphisms db atoms ~init (fun h -> out := h :: !out);
  !out

exception Found of Mapping.t

(* first answer = first answer of the sequential enumeration: runs on the
   sequential path so the exception exits as soon as the witness is found
   (a parallel region would buffer whole chunks before replaying). *)
let first_homomorphism db atoms ~init =
  let p = compile db atoms ~init in
  let table = conversion_table p in
  try
    iter_envs_seq p (fun env ->
        raise (Found (mapping_of_env_with p table env)));
    None
  with Found h -> Some h

let satisfiable db atoms ~init = sat (compile db atoms ~init)

(* split the projection targets into environment slots and init
   pass-throughs: (slotted vars, their slots, mapping of fixed vars) *)
let projection_frame p onto =
  let slotted =
    List.filter_map (fun x -> Option.map (fun s -> (x, s)) (slot_of p x)) onto
  in
  let fixed =
    List.fold_left
      (fun acc x ->
        if List.mem_assoc x slotted then acc
        else
          match Mapping.find x p.init with
          | Some v -> Mapping.add x v acc
          | None -> acc)
      Mapping.empty onto
  in
  ( Array.of_list (List.map fst slotted),
    Array.of_list (List.map snd slotted),
    fixed )

let distinct_projections db atoms ~init ~onto =
  let p = compile db atoms ~init in
  if not p.feasible then []
  else begin
    (* dedup happens on raw slot tuples *)
    let hvars, hslots, fixed = projection_frame p onto in
    let seen = Tuple.Tbl.create 256 in
    (* one reusable probe key; copied only when a new projection is seen *)
    let nk = Array.length hslots in
    let probe = Array.make nk 0 in
    iter_envs p (fun env ->
        for i = 0 to nk - 1 do
          probe.(i) <- env.(hslots.(i))
        done;
        if not (Tuple.Tbl.mem seen probe) then
          Tuple.Tbl.add seen (Array.copy probe) ());
    Tuple.Tbl.fold
      (fun key () acc ->
        let m = ref fixed in
        Array.iteri
          (fun i v -> m := Mapping.add hvars.(i) (value_of p v) !m)
          key;
        !m :: acc)
      seen []
  end

exception Stream_done

(* [stream_projections] emits distinct projections in first-seen enumeration
   order, skipping [offset] and stopping after [limit]: pagination without
   materializing the answer set. Deliberately sequential — the early exit is
   the point — and deduplicating on the fly, so a page costs only the
   enumeration prefix that produces it. Returns the number emitted. *)
let stream_projections db atoms ~init ~onto ~offset ~limit f =
  let p = compile db atoms ~init in
  if (not p.feasible) || limit = Some 0 then 0
  else begin
    let hvars, hslots, fixed = projection_frame p onto in
    let seen = Tuple.Tbl.create 256 in
    let nk = Array.length hslots in
    let probe = Array.make nk 0 in
    let skipped = ref 0 and emitted = ref 0 in
    (try
       iter_envs_seq p (fun env ->
           for i = 0 to nk - 1 do
             probe.(i) <- env.(hslots.(i))
           done;
           if not (Tuple.Tbl.mem seen probe) then begin
             Tuple.Tbl.add seen (Array.copy probe) ();
             if !skipped < offset then incr skipped
             else begin
               let m = ref fixed in
               Array.iteri
                 (fun i v -> m := Mapping.add hvars.(i) (value_of p v) !m)
                 probe;
               f !m;
               incr emitted;
               match limit with
               | Some l when !emitted >= l -> raise Stream_done
               | _ -> ()
             end
           end)
     with Stream_done -> ());
    !emitted
  end

(* ------------------------------------------------------------------ *)
(* Interned relations (for hash-based semijoin trees)                   *)
(* ------------------------------------------------------------------ *)

module Rel = struct
  type t = {
    vars : string array;  (* sorted, no duplicates *)
    mutable rows : Tuple.t list;
    mutable count : int;
  }

  let vars r = Array.to_list r.vars
  let var_set r = String_set.of_list (Array.to_list r.vars)
  let cardinal r = r.count
  let is_empty r = r.count = 0
  let unit = { vars = [||]; rows = [ [||] ]; count = 1 }

  let make vars rows =
    let seen = Tuple.Tbl.create (max 16 (List.length rows)) in
    let distinct =
      List.filter
        (fun t ->
          if Tuple.Tbl.mem seen t then false
          else begin
            Tuple.Tbl.add seen t ();
            true
          end)
        rows
    in
    { vars; rows = distinct; count = List.length distinct }

  (* distinct projections of the facts matching [atom] onto its (sorted)
     variables, computed by a single-atom plan *)
  let of_atom db atom =
    let p = compile db [ atom ] ~init:Mapping.empty in
    let vs = Array.of_list (List.sort String.compare (Atom.vars atom)) in
    if not p.feasible then { vars = vs; rows = []; count = 0 }
    else begin
      let slots =
        Array.map
          (fun x ->
            match slot_of p x with
            | Some s -> s
            | None -> assert false (* every variable of the atom has a slot *))
          vs
      in
      let seen = Tuple.Tbl.create 64 in
      let nk = Array.length slots in
      let probe = Array.make nk 0 in
      iter_envs p (fun env ->
          for i = 0 to nk - 1 do
            probe.(i) <- env.(slots.(i))
          done;
          if not (Tuple.Tbl.mem seen probe) then
            Tuple.Tbl.add seen (Array.copy probe) ());
      let rows = Tuple.Tbl.fold (fun t () acc -> t :: acc) seen [] in
      { vars = vs; rows; count = List.length rows }
    end

  (* positions of [xs] inside [r.vars] *)
  let positions r xs =
    Array.map
      (fun x ->
        let rec find i =
          if i >= Array.length r.vars then
            invalid_arg "Engine.Rel: variable not present"
          else if String.equal r.vars.(i) x then i
          else find (i + 1)
        in
        find 0)
      xs

  let shared_vars r s =
    let in_s x = Array.exists (String.equal x) s.vars in
    Array.of_list (List.filter in_s (Array.to_list r.vars))

  let key_of positions t = Array.map (fun p -> t.(p)) positions

  let semijoin r s =
    let shared = shared_vars r s in
    let pr = positions r shared and ps = positions s shared in
    let keys = Tuple.Tbl.create (max 16 s.count) in
    List.iter
      (fun t ->
        let k = key_of ps t in
        if not (Tuple.Tbl.mem keys k) then Tuple.Tbl.add keys k ())
      s.rows;
    let keep t = Tuple.Tbl.mem keys (key_of pr t) in
    let nd = Parallel.domains () in
    let rows =
      if
        nd > 1
        && r.count >= Parallel.min_rows ()
        && Atomic.compare_and_set Parallel.in_region false true
      then
        (* chunk-parallel filter: [keys] is only read inside the region, so
           sharing the table across domains is safe; per-chunk results are
           concatenated in chunk order to keep the row order deterministic *)
        Fun.protect ~finally:Parallel.leave (fun () ->
            let arr = Array.of_list r.rows in
            let count = Array.length arr in
            let nchunks = Parallel.nchunks_for nd count in
            let bounds = Parallel.chunk_bounds count nchunks in
            let parts = Array.make nchunks [] in
            Parallel.run_chunks ~nd ~nchunks (fun i ->
                let lo, hi = bounds.(i) in
                let out = ref [] in
                for j = hi - 1 downto lo do
                  if keep arr.(j) then out := arr.(j) :: !out
                done;
                parts.(i) <- !out);
            List.concat (Array.to_list parts))
      else List.filter keep r.rows
    in
    { r with rows; count = List.length rows }

  let join r s =
    let small, large = if r.count <= s.count then (r, s) else (s, r) in
    let shared = shared_vars large small in
    let pl = positions large shared and psm = positions small shared in
    let idx = Tuple.Tbl.create (max 16 small.count) in
    List.iter
      (fun t ->
        let k = key_of psm t in
        match Tuple.Tbl.find_opt idx k with
        | Some cell -> cell := t :: !cell
        | None -> Tuple.Tbl.add idx k (ref [ t ]))
      small.rows;
    let out_vars =
      Array.of_list
        (List.sort_uniq String.compare
           (Array.to_list r.vars @ Array.to_list s.vars))
    in
    (* each output position reads from the large row or the small row *)
    let from_large =
      Array.map
        (fun x ->
          let rec find i =
            if i >= Array.length large.vars then None
            else if String.equal large.vars.(i) x then Some i
            else find (i + 1)
          in
          find 0)
        out_vars
    in
    let small_pos =
      Array.map
        (fun x ->
          let rec find i =
            if i >= Array.length small.vars then -1
            else if String.equal small.vars.(i) x then i
            else find (i + 1)
          in
          find 0)
        out_vars
    in
    let seen = Tuple.Tbl.create 64 in
    List.iter
      (fun tl ->
        match Tuple.Tbl.find_opt idx (key_of pl tl) with
        | None -> ()
        | Some cell ->
            List.iter
              (fun ts ->
                let out =
                  Array.init (Array.length out_vars) (fun i ->
                      match from_large.(i) with
                      | Some p -> tl.(p)
                      | None -> ts.(small_pos.(i)))
                in
                if not (Tuple.Tbl.mem seen out) then Tuple.Tbl.add seen out ())
              !cell)
      large.rows;
    let rows = Tuple.Tbl.fold (fun t () acc -> t :: acc) seen [] in
    { vars = out_vars; rows; count = List.length rows }

  let project keep r =
    let kept =
      Array.of_list
        (List.filter (fun x -> String_set.mem x keep) (Array.to_list r.vars))
    in
    if Array.length kept = Array.length r.vars then r
    else begin
      let pos = positions r kept in
      let seen = Tuple.Tbl.create (max 16 r.count) in
      List.iter
        (fun t ->
          let k = key_of pos t in
          if not (Tuple.Tbl.mem seen k) then Tuple.Tbl.add seen k ())
        r.rows;
      let rows = Tuple.Tbl.fold (fun t () acc -> t :: acc) seen [] in
      { vars = kept; rows; count = List.length rows }
    end

  let to_mappings db r =
    let cdb = Db.of_database db in
    List.map
      (fun t ->
        let m = ref Mapping.empty in
        Array.iteri
          (fun i x -> m := Mapping.add x (Interner.get cdb.Db.pool t.(i)) !m)
          r.vars;
        !m)
      r.rows
end

(* ------------------------------------------------------------------ *)
(* Delta evaluation: net change batches over the modification log       *)
(* ------------------------------------------------------------------ *)

module Delta = struct
  type batch = {
    from_version : int;
    to_version : int;
    added : Fact.t list;
    removed : Fact.t list;
  }

  let batch db ~since =
    let v = Database.version db in
    if since >= v then
      { from_version = since; to_version = v; added = []; removed = [] }
    else begin
      (* Net effect per fact from the stamped log window: entries for a fact
         strictly alternate Add/Remove starting from its state at [since]
         (Database.add only logs when absent, remove only when live), so the
         first entry tells the state at [since] and the last the state now. *)
      let entries = Database.changes_since db since in
      let first : (Fact.t, Database.change) Hashtbl.t = Hashtbl.create 32 in
      let last : (Fact.t, Database.change) Hashtbl.t = Hashtbl.create 32 in
      let order = ref [] in
      List.iter
        (fun e ->
          let f = match e with Database.Add f | Database.Remove f -> f in
          if not (Hashtbl.mem first f) then begin
            Hashtbl.add first f e;
            order := f :: !order
          end;
          Hashtbl.replace last f e)
        entries;
      let order = List.rev !order in
      let net keep =
        List.filter
          (fun f -> keep (Hashtbl.find first f) (Hashtbl.find last f))
          order
      in
      let added =
        net (fun a b ->
            match (a, b) with Database.Add _, Database.Add _ -> true | _ -> false)
      and removed =
        net (fun a b ->
            match (a, b) with
            | Database.Remove _, Database.Remove _ -> true
            | _ -> false)
      in
      { from_version = since; to_version = v; added; removed }
    end

  let is_empty b = b.added = [] && b.removed = []

  type index = {
    i_added : Fact.Set.t;
    i_removed : Fact.Set.t;
    i_added_by_rel : (string, Fact.t list) Hashtbl.t;  (* oldest first *)
  }

  let index b =
    let by_rel = Hashtbl.create 8 in
    List.iter
      (fun f ->
        let r = Fact.rel f in
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_rel r) in
        Hashtbl.replace by_rel r (f :: prev))
      (List.rev b.added);
    { i_added = Fact.Set.of_list b.added;
      i_removed = Fact.Set.of_list b.removed;
      i_added_by_rel = by_rel }

  let mem_added idx f = Fact.Set.mem f idx.i_added
  let mem_removed idx f = Fact.Set.mem f idx.i_removed

  let added_of idx rel =
    Option.value ~default:[] (Hashtbl.find_opt idx.i_added_by_rel rel)

  type dirty_range = {
    dr_atom : int;
    dr_rel : string;
    dr_pos : int;
    dr_values : Value.t list;  (* distinct, ascending *)
  }

  let dirty_ranges atoms b =
    let touched : (string * int, Value.Set.t ref) Hashtbl.t =
      Hashtbl.create 16
    in
    let note f =
      List.iteri
        (fun i v ->
          match Hashtbl.find_opt touched (Fact.rel f, i) with
          | Some s -> s := Value.Set.add v !s
          | None -> Hashtbl.add touched (Fact.rel f, i) (ref (Value.Set.singleton v)))
        (Fact.tuple f)
    in
    List.iter note b.added;
    List.iter note b.removed;
    List.concat
      (List.mapi
         (fun ai a ->
           let rel = Atom.rel a in
           List.filter_map
             (fun pos ->
               match Hashtbl.find_opt touched (rel, pos) with
               | Some s ->
                   Some
                     { dr_atom = ai;
                       dr_rel = rel;
                       dr_pos = pos;
                       dr_values = Value.Set.elements !s }
               | None -> None)
             (List.init (Atom.arity a) Fun.id))
         atoms)

  (* Scoped re-run for the backtracking path: enumerate homomorphisms of
     [atoms] extending [init] where the atom at index [pivot] maps onto a
     *net-added* fact of the batch. Every genuinely new homomorphism of the
     pattern uses at least one added fact, so ranging the pivot over the
     atom list covers all of them; the remaining atoms run against the full
     (current) database via the counted indexes. *)
  let iter_pivot_homs db atoms ~pivot idx ~init yield =
    match List.nth_opt atoms pivot with
    | None -> invalid_arg "Engine.Delta.iter_pivot_homs: pivot out of range"
    | Some pa ->
        let rest = List.filteri (fun i _ -> i <> pivot) atoms in
        let rec solve h = function
          | [] -> yield h
          | a :: more ->
              List.iter
                (fun h' -> solve h' more)
                (Database.matches db a h)
        in
        List.iter
          (fun f ->
            match Mapping.matches_fact init pa f with
            | Some h0 -> solve h0 rest
            | None -> ())
          (added_of idx (Atom.rel pa))
end
