open Relational

type expr =
  | Bgp of Triple.pattern list
  | And of expr * expr
  | Opt of expr * expr

type query = {
  select : string list option;
  where : expr;
}

let term_vars t =
  match Term.as_var t with
  | Some x -> String_set.singleton x
  | None -> String_set.empty

let pattern_vars (s, p, o) =
  String_set.union (term_vars s) (String_set.union (term_vars p) (term_vars o))

let rec vars_of_expr = function
  | Bgp ps ->
      List.fold_left
        (fun acc p -> String_set.union acc (pattern_vars p))
        String_set.empty ps
  | And (a, b) | Opt (a, b) -> String_set.union (vars_of_expr a) (vars_of_expr b)

let well_designed_witness e =
  let first a b = match a with Some _ -> a | None -> b () in
  let rec check e outside =
    match e with
    | Bgp _ -> None
    | And (a, b) ->
        first
          (check a (String_set.union outside (vars_of_expr b)))
          (fun () -> check b (String_set.union outside (vars_of_expr a)))
    | Opt (a, b) ->
        let escaping =
          String_set.diff
            (String_set.inter (vars_of_expr b) outside)
            (vars_of_expr a)
        in
        (match String_set.choose_opt escaping with
        | Some x -> Some (x, e)
        | None ->
            first
              (check a (String_set.union outside (vars_of_expr b)))
              (fun () -> check b (String_set.union outside (vars_of_expr a))))
  in
  check e String_set.empty

let is_well_designed e = Option.is_none (well_designed_witness e)

let rec normal_form = function
  | Bgp _ as b -> b
  | Opt (a, b) -> Opt (normal_form a, normal_form b)
  | And (a, b) -> (
      match (normal_form a, normal_form b) with
      | Opt (a1, a2), nb -> normal_form (Opt (And (a1, nb), a2))
      | na, Opt (b1, b2) -> normal_form (Opt (And (na, b1), b2))
      | Bgp xs, Bgp ys -> Bgp (xs @ ys)
      | (And _ as na), nb | na, (And _ as nb) ->
          (* normal_form never returns And *)
          ignore (na, nb);
          assert false)

let to_spec { select; where } =
  (* purely structural: sound as a translation only for well-designed
     patterns, but usable by the analyzer to locate defects in any pattern *)
  let rec build e : Wdpt.Pattern_tree.spec =
    match e with
    | Bgp ps -> Node (List.map Triple.pattern_to_atom ps, [])
    | Opt (a, b) ->
        let (Node (atoms, kids)) = build a in
        Node (atoms, kids @ [ build b ])
    | And _ -> assert false (* eliminated by normal_form *)
  in
  let spec = build (normal_form where) in
  let free =
    match select with
    | None -> String_set.elements (vars_of_expr where)
    | Some vs -> vs
  in
  (free, spec)

let to_pattern_tree q =
  if not (is_well_designed q.where) then
    invalid_arg "Sparql.to_pattern_tree: pattern is not well-designed";
  let free, spec = to_spec q in
  Wdpt.Pattern_tree.make ~free spec

let of_pattern_tree p =
  let patterns_of i =
    List.map
      (fun a ->
        match Triple.atom_to_pattern a with
        | Some pat -> pat
        | None -> invalid_arg "Sparql.of_pattern_tree: non-triple atom")
      (Wdpt.Pattern_tree.atoms p i)
  in
  let rec build i =
    let base = Bgp (patterns_of i) in
    List.fold_left
      (fun acc c -> Opt (acc, build c))
      base (Wdpt.Pattern_tree.children p i)
  in
  { select = Some (Wdpt.Pattern_tree.free p);
    where = build (Wdpt.Pattern_tree.root p) }

(* ---- concrete syntax ---------------------------------------------------- *)

type token =
  | SELECT
  | WHERE
  | STAR
  | OPT_KW
  | AND_KW
  | DOT
  | LBRACE
  | RBRACE
  | VAR of string
  | WORD of string
  | STRING of string
  | INT of int

module Loc = Wdpt.Loc

(* advance a position over src.[p.offset .. j-1] *)
let advance_to src p j =
  let q = ref p in
  for k = p.Loc.offset to j - 1 do
    q := Loc.advance !q src.[k]
  done;
  !q

let tokenize src =
  let n = String.length src in
  let fail message p = Error { Wdpt.Syntax.message; pos = Some p } in
  let rec go p acc =
    let i = p.Loc.offset in
    if i >= n then Ok (List.rev acc, p)
    else
      let c = src.[i] in
      let single tok =
        let q = Loc.advance p c in
        go q ((tok, Loc.make_span p q) :: acc)
      in
      match c with
      | ' ' | '\t' | '\n' | '\r' -> go (Loc.advance p c) acc
      | '{' -> single LBRACE
      | '}' -> single RBRACE
      | '.' -> single DOT
      | '*' -> single STAR
      | '"' ->
          let rec close j =
            if j >= n then fail "unterminated string literal" p
            else if src.[j] = '"' then
              let q = advance_to src p (j + 1) in
              go q ((STRING (String.sub src (i + 1) (j - i - 1)), Loc.make_span p q) :: acc)
            else close (j + 1)
          in
          close (i + 1)
      | '?' ->
          let rec word j =
            if j < n
               && (match src.[j] with
                  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true
                  | _ -> false)
            then word (j + 1)
            else j
          in
          let j = word (i + 1) in
          if j = i + 1 then fail "empty variable name" p
          else
            let q = advance_to src p j in
            go q ((VAR (String.sub src (i + 1) (j - i - 1)), Loc.make_span p q) :: acc)
      | _ ->
          let rec word j =
            if j < n
               && (match src.[j] with
                  | ' ' | '\t' | '\n' | '\r' | '{' | '}' | '"' | '?' -> false
                  | '.' -> false
                  | _ -> true)
            then word (j + 1)
            else j
          in
          let j = word i in
          let w = String.sub src i (j - i) in
          let tok =
            match String.uppercase_ascii w with
            | "SELECT" -> SELECT
            | "WHERE" -> WHERE
            | "OPT" | "OPTIONAL" -> OPT_KW
            | "AND" -> AND_KW
            | _ -> (
                match int_of_string_opt w with
                | Some k -> INT k
                | None -> WORD w)
          in
          let q = advance_to src p j in
          go q ((tok, Loc.make_span p q) :: acc)
  in
  go Loc.start_pos []

exception Parse_error of Wdpt.Syntax.parse_failure

let parse_located src =
  match tokenize src with
  | Error e -> Error e
  | Ok (tokens, eof) -> (
      let toks = ref tokens in
      let spans = ref [] in
      let peek () = match !toks with (t, _) :: _ -> Some t | [] -> None in
      let here () = match !toks with (_, s) :: _ -> s.Loc.start | [] -> eof in
      let here_span () = match !toks with (_, s) :: _ -> s | [] -> Loc.at eof in
      let advance () = match !toks with _ :: rest -> toks := rest | [] -> () in
      let fail message = raise (Parse_error { message; pos = Some (here ()) }) in
      let expect t name =
        match peek () with
        | Some t' when t' = t -> advance ()
        | _ -> fail ("expected " ^ name)
      in
      let term () =
        match peek () with
        | Some (VAR x) ->
            advance ();
            Term.var x
        | Some (WORD w) ->
            advance ();
            Term.str w
        | Some (STRING s) ->
            advance ();
            Term.str s
        | Some (INT k) ->
            advance ();
            Term.int k
        | _ -> fail "expected a term"
      in
      let triple () =
        let start = here_span () in
        let s = term () in
        let p = term () in
        let stop = here_span () in
        let o = term () in
        let pat = (s, p, o) in
        spans := (pat, Loc.union start stop) :: !spans;
        pat
      in
      (* pattern := primary (('OPT'|'AND'|'.') primary)*  left-assoc *)
      let rec primary () =
        match peek () with
        | Some LBRACE ->
            advance ();
            let e = pattern () in
            expect RBRACE "'}'";
            e
        | Some (VAR _ | WORD _ | STRING _ | INT _) -> Bgp [ triple () ]
        | _ -> fail "expected a group or a triple"
      and pattern () =
        let rec loop acc =
          match peek () with
          | Some OPT_KW ->
              advance ();
              loop (Opt (acc, primary ()))
          | Some (AND_KW | DOT) ->
              advance ();
              (* trailing dot before '}' is allowed *)
              (match peek () with
              | Some RBRACE | None -> acc
              | _ -> loop (And (acc, primary ())))
          | Some (VAR _ | WORD _ | STRING _ | INT _ | LBRACE) ->
              (* juxtaposition also means AND *)
              loop (And (acc, primary ()))
          | _ -> acc
        in
        loop (primary ())
      in
      try
        expect SELECT "SELECT";
        let select =
          match peek () with
          | Some STAR ->
              advance ();
              None
          | _ ->
              let rec vars acc =
                match peek () with
                | Some (VAR x) ->
                    advance ();
                    vars (x :: acc)
                | _ -> List.rev acc
              in
              let vs = vars [] in
              if vs = [] then fail "expected variables or * after SELECT";
              Some vs
        in
        expect WHERE "WHERE";
        let where = pattern () in
        (match peek () with
        | None -> ()
        | Some _ -> fail "trailing tokens");
        Ok ({ select; where }, List.rev !spans)
      with Parse_error e -> Error e)

let parse src =
  match parse_located src with
  | Ok (q, _) -> Ok q
  | Error e -> Error (Wdpt.Syntax.describe_failure e)

let parse_and_translate src =
  match parse src with
  | Error e -> Error e
  | Ok q -> (
      try Ok (to_pattern_tree q) with Invalid_argument e -> Error e)

let pp_term ppf t =
  match t with
  | Term.Var x -> Format.fprintf ppf "?%s" x
  | Term.Const (Value.Int k) -> Format.pp_print_int ppf k
  | Term.Const (Value.Str s) ->
      if String.contains s ' ' then Format.fprintf ppf "%S" s
      else Format.pp_print_string ppf s

let rec pp_expr ppf = function
  | Bgp ps ->
      Format.fprintf ppf "{ %a }"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " . ")
           (fun ppf (s, p, o) ->
             Format.fprintf ppf "%a %a %a" pp_term s pp_term p pp_term o))
        ps
  | And (a, b) -> Format.fprintf ppf "{ %a AND %a }" pp_expr a pp_expr b
  | Opt (a, b) -> Format.fprintf ppf "{ %a OPT %a }" pp_expr a pp_expr b

let pp_query ppf { select; where } =
  (match select with
  | None -> Format.fprintf ppf "SELECT * "
  | Some vs ->
      Format.fprintf ppf "SELECT %a "
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
           (fun ppf v -> Format.fprintf ppf "?%s" v))
        vs);
  Format.fprintf ppf "WHERE %a" pp_expr where
