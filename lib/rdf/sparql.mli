(** The {AND, OPT} fragment of SPARQL (Section 1), with the well-designedness
    condition of Pérez et al. [18], the OPT-normal-form translation to WDPTs
    of Letelier et al. [17], and a small concrete syntax.

    Concrete syntax (algebraic style, as in the paper's Example 1):
    {v
      SELECT ?y ?z WHERE {
        { ?x recorded_by ?y . ?x published "after 2010" }
        OPT { ?x NME_rating ?z }
        OPT { ?y formed_in ?z2 }
      }
    v}
    [.] and [AND] both denote conjunction; [OPT]/[OPTIONAL] is left
    associative with the same precedence, so [a OPT b OPT c] reads
    [(a OPT b) OPT c]; braces group. [SELECT *] keeps every variable
    (projection-free). *)

type expr =
  | Bgp of Triple.pattern list
  | And of expr * expr
  | Opt of expr * expr

type query = {
  select : string list option;  (** [None] = SELECT * *)
  where : expr;
}

val vars_of_expr : expr -> Relational.String_set.t

(** Well-designedness of Pérez et al.: for every subpattern [e1 OPT e2],
    every variable of [e2] occurring outside the subpattern also occurs in
    [e1]. *)
val is_well_designed : expr -> bool

(** A witness of non-well-designedness: the escaping variable and the
    [e1 OPT e2] subpattern it escapes from (the variable occurs in [e2] and
    outside the subpattern but not in [e1]). [None] iff well-designed. *)
val well_designed_witness : expr -> (string * expr) option

(** OPT normal form: no OPT below an AND. Assumes well-designedness (the
    rewriting [(P1 OPT P2) AND P3 ≡ (P1 AND P3) OPT P2] is only sound
    then). *)
val normal_form : expr -> expr

(** Structural translation to a tree description (free variables, spec),
    without the well-designedness check: the OPT-normal-form rewriting is
    only a semantics-preserving translation for well-designed patterns, but
    the analyzer uses this to locate defects in arbitrary ones. *)
val to_spec : query -> string list * Wdpt.Pattern_tree.spec

(** Translation to a WDPT over the {!Triple.relation} schema.
    @raise Invalid_argument if the expression is not well-designed. *)
val to_pattern_tree : query -> Wdpt.Pattern_tree.t

(** Inverse translation (WDPT over the triple schema only).
    @raise Invalid_argument on non-triple atoms. *)
val of_pattern_tree : Wdpt.Pattern_tree.t -> query

(** Parse the concrete syntax; errors report line and column. *)
val parse : string -> (query, string) result

(** Like {!parse}, but also returns the source span of every triple pattern
    (keyed structurally — repeated identical triples share their first
    occurrence's span), and a structured failure. Feeds diagnostic spans in
    [Analysis.Lint]. *)
val parse_located :
  string ->
  (query * (Triple.pattern * Wdpt.Loc.span) list, Wdpt.Syntax.parse_failure) result

(** [parse_and_translate s] — convenience composition. *)
val parse_and_translate : string -> (Wdpt.Pattern_tree.t, string) result

val pp_expr : Format.formatter -> expr -> unit
val pp_query : Format.formatter -> query -> unit
