(* Differential fuzzer: cross-checks every implementation of the WDPT
   semantics (procedural, reference, bottom-up algebraic) and the tractable
   decision procedures (Theorems 6-9) against brute force on random
   instances, printing the offending seed on any disagreement.

   Usage: wdpt_fuzz [SECONDS] [SEED]
          wdpt_fuzz --opt-diff [COUNT] [SEED]
          wdpt_fuzz --par-diff [COUNT] [SEED]
          wdpt_fuzz --race-diff [COUNT] [SEED]
          wdpt_fuzz --batch-diff [COUNT] [SEED]
          wdpt_fuzz --batch-audit-diff [COUNT] [SEED]
          wdpt_fuzz --drift-diff [COUNT] [SEED]
          wdpt_fuzz --delta-diff [COUNT] [SEED]
   SECONDS defaults to 10; SEED pins the starting seed (the CI smoke run
   pins it so failures reproduce), defaulting to the current time.
   An unknown --MODE flag is an error: usage on stderr, exit 2.

   --opt-diff COUNT runs the optimizer differential instead: on COUNT
   (default 500) random instances it evaluates once with the engine's
   optimization pass pipeline disabled and once with it enabled — the answer
   sets must be identical at both the WDPT and the CQ level — and
   translation-validates every optimized plan's certificate trail
   (Analysis.Equiv, zero E007-E010 expected). Count-based rather than
   time-based so a pinned seed always covers the same instances.

   --par-diff COUNT runs the parallel differential: on COUNT (default 400)
   random instances it evaluates sequentially and with a pool of 2 and 4
   domains (the min-rows threshold lowered to 1 so small draws still cross
   the parallel path), requiring identical answer sets at both the WDPT and
   the CQ level and an identical env-for-env enumeration order across two
   parallel runs.

   --race-diff COUNT runs the race differential (default 300): on COUNT
   random instances it draws a random pool size and chunking threshold,
   turns the data-race sanitizer on (every parallel region logs its
   shared-location accesses and validates them vector-clock-style after the
   join), and cross-checks the sanitized parallel answers against the
   sequential ones — zero Race_failure and identical answers expected. A
   final fault-injection check flips the test-only corrupted reducer on and
   requires the sanitizer to catch it.

   --batch-diff COUNT runs the batched-execution differential (default
   300): on COUNT random instances it evaluates once with the vectorized
   interpreter off (scalar tuple-at-a-time) and once with it on, at domain
   pools of 1 and 2 — the answer sets must be identical at both the WDPT
   and the CQ level (the enumeration orders legitimately differ: the
   batched pipeline runs atoms in the fixed static order while the scalar
   path re-selects per node). A small random morsel size forces group
   boundaries through even tiny draws.

   --drift-diff COUNT runs the adaptive re-planning differential (default
   300): on COUNT random instances it evaluates with adaptation off and
   then twice with it on (the first adaptive pass collects counters and may
   install a calibration, the second serves the re-planned plan) — the
   answer sets must be identical in all passes at both semantics levels;
   any cached swap certificate must independently re-verify through
   Analysis.Feedback (zero E025); the genuine feedback view of an executed
   plan must audit clean (zero E022-E026); and a seeded drift injection
   into a corrupted copy of the view must be caught as E022.

   --delta-diff COUNT runs the incremental-maintenance differential
   (default 300): on COUNT random instances it registers the query as a
   standing view (Wdpt.Standing) and replays 6 random batches of
   insertions and deletions against the database, after each refresh
   cross-checking the maintained answer set and subsumption frontier
   against full re-evaluation at both semantics levels, replaying the
   emitted change events through the E030 check, auditing the view
   invariants (E028/E029) and the dirty-range derivation (E027) — all
   expected clean. Deletions make up a quarter of the operations by
   default; WDPT_DELTA_FUZZ_DELETES=1 doubles that to half, so the
   tombstone/compaction paths see delete-heavy streams.

   --batch-audit-diff COUNT runs the batch-pipeline auditor differential
   (default 300): on COUNT random instances the genuine batched layout must
   audit clean (zero E017-E020) at domain pools of 1 and 2, and after a
   count plus a full enumeration of the plan every measured batch_stats
   high-water mark must stay within the certified Analysis.Resource
   envelope (zero E021), with randomized morsel size and checked mode. *)

open Relational

let random_instance seed =
  let st = Random.State.make [| seed |] in
  let pick l = List.nth l (Random.State.int st (List.length l)) in
  let p =
    Workload.Gen_wdpt.random ~seed ~depth:(pick [ 1; 2 ]) ~branching:(pick [ 1; 2 ])
      ~vars_per_node:(pick [ 1; 2; 3 ])
      ~interface:(pick [ 1; 2 ])
      ~free_per_node:(pick [ 0; 1 ])
      ~style:(pick [ Workload.Gen_wdpt.Chain; Workload.Gen_wdpt.Clique 3 ])
      ~rel:"E"
  in
  let db =
    Workload.Gen_db.random_graph_db ~seed:(seed + 1)
      ~nodes:(2 + Random.State.int st 5)
      ~edges:(1 + Random.State.int st 10)
  in
  (p, db)

(* Cap how many probe mappings we feed the decision procedures: every probe
   runs three of them, so an instance with thousands of answers would turn
   into minutes of probing.  A bounded sample keeps each instance cheap
   while still exercising answers, strict restrictions and the empty
   mapping. *)
let max_probes = 48

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

let probes reference =
  let ans = Mapping.Set.elements reference in
  let restrictions =
    List.concat_map
      (fun h ->
        List.map
          (fun x -> Mapping.restrict (String_set.remove x (Mapping.domain h)) h)
          (String_set.elements (Mapping.domain h)))
      ans
  in
  Mapping.empty :: take max_probes (ans @ restrictions)

(* The reference oracle enumerates homomorphisms for every subtree of p and
   then takes pairwise maxima, so an unlucky draw costs up to
   (nsubtrees * |adom|^|vars|)^2 and can run for minutes.  Such instances
   are useless to the fuzzer (nothing can be cross-checked against an
   oracle that never returns) and a pinned-seed smoke run must be bounded
   per instance, not just between instances — so skip them. *)
let brute_force_feasible p db =
  let nvars = String_set.cardinal (Wdpt.Pattern_tree.vars p) in
  let adom = max 2 (Database.adom_size db) in
  let nsubtrees =
    Seq.fold_left (fun k _ -> k + 1) 0 (Wdpt.Pattern_tree.subtrees p)
  in
  log (float_of_int nsubtrees)
  +. (float_of_int nvars *. log (float_of_int adom))
  <= log 3e4

let check_instance p db =
  let failures = ref [] in
  let fail name = failures := name :: !failures in
  let reference = Wdpt.Semantics.eval_naive db p in
  if not (Mapping.Set.equal (Wdpt.Semantics.eval db p) reference) then
    fail "procedural-vs-reference";
  if not (Mapping.Set.equal (Wdpt.Algebra_eval.eval db p) reference) then
    fail "algebraic-vs-reference";
  let max_ref =
    Mapping.Set.of_list (Mapping.maximal_elements (Mapping.Set.elements reference))
  in
  List.iter
    (fun h ->
      if Wdpt.Eval_tractable.decision db p h <> Mapping.Set.mem h reference then
        fail "eval-tractable";
      let brute_partial =
        Mapping.Set.exists (Mapping.subsumes h) reference
      in
      if Wdpt.Partial_eval.decision db p h <> brute_partial then fail "partial-eval";
      if Wdpt.Max_eval.decision db p h <> Mapping.Set.mem h max_ref then
        fail "max-eval")
    (probes reference);
  !failures

(* ---- optimizer differential --------------------------------------------- *)

(* One instance of the --opt-diff mode: same answers with the pass pipeline
   off and on (at both semantics levels), and a clean certificate trail. *)
let check_opt_diff p db =
  let failures = ref [] in
  let fail name = failures := name :: !failures in
  let with_opt b f =
    Engine.set_optimize b;
    Fun.protect ~finally:(fun () -> Engine.set_optimize true) f
  in
  let plain = with_opt false (fun () -> Wdpt.Semantics.eval db p) in
  let opt = with_opt true (fun () -> Wdpt.Semantics.eval db p) in
  if not (Mapping.Set.equal plain opt) then fail "wdpt-eval-opt-vs-unopt";
  let q = Wdpt.Pattern_tree.q_full p in
  let cq_plain = with_opt false (fun () -> Cq.Eval.answers db q) in
  let cq_opt = with_opt true (fun () -> Cq.Eval.answers db q) in
  if not (Mapping.Set.equal cq_plain cq_opt) then fail "cq-eval-opt-vs-unopt";
  let plan = Engine.compile db (Cq.Query.body q) ~init:Mapping.empty in
  let report = Analysis.Equiv.verify_trail plan in
  if not report.Analysis.Equiv.r_verified then begin
    fail "certificate-trail";
    List.iter
      (fun d ->
        Printf.printf "    %s\n%!"
          (Analysis.Diagnostic.code_id d.Analysis.Diagnostic.code))
      (Analysis.Equiv.diagnostics report)
  end;
  !failures

(* The differential does not run the quadratic brute-force oracle, only the
   production evaluators (one enumeration per subtree), so it can afford a
   much larger per-instance budget than brute_force_feasible — but it still
   needs one: the evaluators are worst-case exponential in the variable
   count, and an unlucky draw otherwise eats gigabytes. *)
let opt_diff_feasible p db =
  let nvars = String_set.cardinal (Wdpt.Pattern_tree.vars p) in
  let adom = max 2 (Database.adom_size db) in
  float_of_int nvars *. log (float_of_int adom) <= log 1e6

(* ---- parallel differential ---------------------------------------------- *)

(* One instance of the --par-diff mode: identical answers with domain pools
   of 1, 2 and 4 (at both semantics levels), and a deterministic
   env-for-env enumeration order across two runs of the same parallel
   configuration. *)
let check_par_diff p db =
  let failures = ref [] in
  let fail name = failures := name :: !failures in
  let with_domains n f =
    Engine.Parallel.set_domains n;
    (* threshold 1: even tiny draws cross the chunked path *)
    Engine.Parallel.set_min_rows 1;
    Fun.protect
      ~finally:(fun () ->
        Engine.Parallel.set_domains 1;
        Engine.Parallel.set_min_rows 128)
      f
  in
  let q = Wdpt.Pattern_tree.q_full p in
  let seq_wdpt = Wdpt.Semantics.eval db p in
  let seq_cq = Cq.Eval.answers db q in
  let seq_envs =
    let plan = Engine.compile db (Cq.Query.body q) ~init:Mapping.empty in
    let out = ref [] in
    Engine.iter_envs plan (fun env -> out := Array.copy env :: !out);
    List.rev !out
  in
  List.iter
    (fun nd ->
      let tag s = Printf.sprintf "%s@%d-domains" s nd in
      with_domains nd (fun () ->
          if not (Mapping.Set.equal (Wdpt.Semantics.eval db p) seq_wdpt) then
            fail (tag "wdpt-eval");
          if not (Mapping.Set.equal (Cq.Eval.answers db q) seq_cq) then
            fail (tag "cq-eval");
          let enum () =
            let plan = Engine.compile db (Cq.Query.body q) ~init:Mapping.empty in
            let out = ref [] in
            Engine.iter_envs plan (fun env -> out := Array.copy env :: !out);
            List.rev !out
          in
          let run1 = enum () and run2 = enum () in
          if run1 <> run2 then fail (tag "order-nondeterministic");
          if run1 <> seq_envs then fail (tag "order-vs-sequential")))
    [ 2; 4 ];
  !failures

(* ---- race differential --------------------------------------------------- *)

(* One instance of the --race-diff mode: a randomized pool size and min-rows
   threshold (randomized chunking), the sanitizer on, answers cross-checked
   against the sequential path. The sanitizer raising is itself a failure:
   the genuine runtime must be race-free. *)
let check_race_diff st p db =
  let failures = ref [] in
  let fail name = failures := name :: !failures in
  let pick l = List.nth l (Random.State.int st (List.length l)) in
  let nd = pick [ 2; 3; 4 ] in
  let mr = pick [ 1; 2; 5 ] in
  let with_sanitized f =
    Engine.Parallel.set_domains nd;
    Engine.Parallel.set_min_rows mr;
    Engine.Parallel.set_race_check true;
    Fun.protect
      ~finally:(fun () ->
        Engine.Parallel.set_domains 1;
        Engine.Parallel.set_min_rows 128;
        Engine.Parallel.set_race_check false)
      f
  in
  let q = Wdpt.Pattern_tree.q_full p in
  let seq_wdpt = Wdpt.Semantics.eval db p in
  let seq_cq = Cq.Eval.answers db q in
  let tag s = Printf.sprintf "%s@%d-domains-min-rows-%d" s nd mr in
  (try
     with_sanitized (fun () ->
         if not (Mapping.Set.equal (Wdpt.Semantics.eval db p) seq_wdpt) then
           fail (tag "wdpt-eval");
         if not (Mapping.Set.equal (Cq.Eval.answers db q) seq_cq) then
           fail (tag "cq-eval");
         let plan = Engine.compile db (Cq.Query.body q) ~init:Mapping.empty in
         if Engine.count_envs plan <> Mapping.Set.cardinal seq_cq then
           ignore (Engine.count_envs plan)
         (* counts can legitimately exceed the answer-set cardinality (CQ
            answers project and deduplicate); the count run exists to push
            the count reducer through the sanitizer *))
   with Engine.Race_failure msg -> fail (tag ("race: " ^ msg)));
  !failures

(* the seeded corrupted reducer must be caught: build one instance big
   enough to chunk, flip fault injection on, and require Race_failure *)
let check_fault_injection () =
  let db =
    Workload.Gen_db.random_graph_db ~seed:7 ~nodes:30 ~edges:60
  in
  let plan =
    Engine.compile db
      [ Atom.make "E" [ Term.var "x"; Term.var "y" ] ]
      ~init:Mapping.empty
  in
  Engine.Parallel.set_domains 4;
  Engine.Parallel.set_min_rows 1;
  Engine.Parallel.set_race_check true;
  Engine.Parallel.set_fault_injection true;
  Fun.protect
    ~finally:(fun () ->
      Engine.Parallel.set_fault_injection false;
      Engine.Parallel.set_race_check false;
      Engine.Parallel.set_domains 1;
      Engine.Parallel.set_min_rows 128)
    (fun () ->
      try
        ignore (Engine.count_envs plan);
        false
      with Engine.Race_failure _ -> true)

(* ---- batched differential ------------------------------------------------ *)

(* One instance of the --batch-diff mode: identical answer sets with the
   vectorized interpreter off and on, at pools 1 and 2, under a randomized
   morsel size so group boundaries land inside even small candidate
   ranges. *)
let check_batch_diff st p db =
  let failures = ref [] in
  let fail name = failures := name :: !failures in
  let pick l = List.nth l (Random.State.int st (List.length l)) in
  let morsel = pick [ 1; 2; 7; 1024 ] in
  let with_config ~batched ~domains f =
    Engine.set_batched batched;
    Engine.Parallel.set_domains domains;
    Engine.Parallel.set_min_rows 1;
    Engine.Parallel.set_morsel_rows morsel;
    Fun.protect
      ~finally:(fun () ->
        Engine.set_batched true;
        Engine.Parallel.set_domains 1;
        Engine.Parallel.set_min_rows 128;
        Engine.Parallel.set_morsel_rows 1024)
      f
  in
  let q = Wdpt.Pattern_tree.q_full p in
  let scalar_wdpt = with_config ~batched:false ~domains:1 (fun () -> Wdpt.Semantics.eval db p) in
  let scalar_cq = with_config ~batched:false ~domains:1 (fun () -> Cq.Eval.answers db q) in
  List.iter
    (fun nd ->
      let tag s = Printf.sprintf "%s@%d-domains-morsel-%d" s nd morsel in
      with_config ~batched:true ~domains:nd (fun () ->
          if not (Mapping.Set.equal (Wdpt.Semantics.eval db p) scalar_wdpt)
          then fail (tag "wdpt-eval-batched-vs-scalar");
          if not (Mapping.Set.equal (Cq.Eval.answers db q) scalar_cq) then
            fail (tag "cq-eval-batched-vs-scalar")))
    [ 1; 2 ];
  !failures

let batch_diff_main count seed0 =
  let bad = ref 0 and checked = ref 0 and skipped = ref 0 in
  let seed = ref seed0 in
  while !checked < count do
    incr seed;
    let p, db = random_instance !seed in
    if not (opt_diff_feasible p db) then incr skipped
    else begin
      incr checked;
      let st = Random.State.make [| !seed; 0xba7c |] in
      match check_batch_diff st p db with
      | [] -> ()
      | failures ->
          incr bad;
          Printf.printf "seed %d FAILED: %s\n%!" !seed
            (String.concat ", " failures)
    end
  done;
  Printf.printf
    "batch-diff: %d instance(s) from seed %d (%d oversized skipped): %d \
     failure(s)\n"
    count seed0 !skipped !bad;
  exit (if !bad = 0 then 0 else 1)

(* ---- incremental-maintenance differential -------------------------------- *)

(* One instance of the --delta-diff mode; see the header comment. The
   database is mutated in place (each instance draws a fresh one), deletions
   target live facts so they actually change the state. *)
let delta_fuzz_deletes =
  match Sys.getenv_opt "WDPT_DELTA_FUZZ_DELETES" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

(* Each instance re-evaluates from scratch 6 times (once per batch, as the
   cross-check oracle) and runs the O(view²) invariant audit on answer sets
   that only grow as batches insert fresh edges — so the per-instance budget
   must stay near the brute-force one, not the evaluator-only one. *)
let delta_diff_feasible p db =
  let nvars = String_set.cardinal (Wdpt.Pattern_tree.vars p) in
  (* batches can add up to 24 fresh edges, growing the active domain *)
  let adom = max 2 (Database.adom_size db) + 6 in
  float_of_int nvars *. log (float_of_int adom) <= log 3e4

let check_delta_diff st p db =
  let module D = Analysis.Diagnostic in
  let failures = ref [] in
  let fail name = failures := name :: !failures in
  let codes ds = String.concat "+" (List.map (fun d -> D.code_id d.D.code) ds) in
  let all_atoms =
    List.concat_map (Wdpt.Pattern_tree.atoms p)
      (List.init (Wdpt.Pattern_tree.node_count p) Fun.id)
  in
  let standing = Wdpt.Standing.register db p in
  let nodes = max 4 (Database.adom_size db) in
  (* delete probability: 1/4 by default, 1/2 under WDPT_DELTA_FUZZ_DELETES *)
  let del_weight = if delta_fuzz_deletes then 2 else 1 in
  for batch = 1 to 6 do
    let tag s = Printf.sprintf "%s-batch-%d" s batch in
    let before_eval = Wdpt.Standing.answers standing in
    let before_max = Wdpt.Standing.maximal_answers standing in
    let v0 = Wdpt.Standing.version standing in
    for _op = 1 to 1 + Random.State.int st 4 do
      if Random.State.int st 4 < del_weight then (
        match Database.facts db with
        | [] -> ()
        | live ->
            Database.remove db
              (List.nth live (Random.State.int st (List.length live))))
      else
        Database.add db
          (Fact.make "E"
             [ Value.int (Random.State.int st nodes);
               Value.int (Random.State.int st nodes) ])
    done;
    let b = Engine.Delta.batch db ~since:v0 in
    (match
       Analysis.Delta_audit.audit_ranges all_atoms b
         (Engine.Delta.dirty_ranges all_atoms b)
     with
    | [] -> ()
    | ds -> fail (tag ("ranges-" ^ codes ds)));
    let events = Wdpt.Standing.refresh standing in
    let after_eval = Wdpt.Semantics.eval db p in
    let after_max = Wdpt.Semantics.eval_max db p in
    if not (Mapping.Set.equal (Wdpt.Standing.answers standing) after_eval)
    then fail (tag "eval-vs-full");
    if
      not
        (Mapping.Set.equal (Wdpt.Standing.maximal_answers standing) after_max)
    then fail (tag "max-vs-full");
    (match Analysis.Delta_audit.audit standing with
    | [] -> ()
    | ds -> fail (tag ("view-" ^ codes ds)));
    match
      Analysis.Delta_audit.check_events ~before_eval ~before_max ~after_eval
        ~after_max events
    with
    | [] -> ()
    | ds -> fail (tag ("events-" ^ codes ds))
  done;
  !failures

let delta_diff_main count seed0 =
  let bad = ref 0 and checked = ref 0 and skipped = ref 0 in
  let seed = ref seed0 in
  while !checked < count do
    incr seed;
    let p, db = random_instance !seed in
    if not (delta_diff_feasible p db) then incr skipped
    else begin
      incr checked;
      let st = Random.State.make [| !seed; 0xde17a |] in
      match check_delta_diff st p db with
      | [] -> ()
      | failures ->
          incr bad;
          Printf.printf "seed %d FAILED: %s\n%!" !seed
            (String.concat ", " failures)
    end
  done;
  Printf.printf
    "delta-diff: %d instance(s) from seed %d (%d oversized skipped, deletes \
     %s): %d failure(s)\n"
    count seed0 !skipped
    (if delta_fuzz_deletes then "1/2" else "1/4")
    !bad;
  exit (if !bad = 0 then 0 else 1)

(* ---- batch-audit differential ------------------------------------------- *)

(* One instance of the --batch-audit-diff mode: the genuine batched layout
   audits clean (E017-E020) at pools 1 and 2, and after running the plan
   (one count, one full enumeration — the latter crosses the parallel
   buffering and, when the random draw arms checked mode, the per-group
   replay) every measured high-water mark stays within the certified
   resource envelope (zero E021). The morsel size is randomized like
   --batch-diff so group boundaries land inside small draws. *)
let check_batch_audit_diff st p db =
  let failures = ref [] in
  let fail name = failures := name :: !failures in
  let pick l = List.nth l (Random.State.int st (List.length l)) in
  let morsel = pick [ 1; 2; 7; 1024 ] in
  let checked = pick [ false; true ] in
  let atoms = Cq.Query.body (Wdpt.Pattern_tree.q_full p) in
  List.iter
    (fun nd ->
      let tag s =
        Printf.sprintf "%s@%d-domains-morsel-%d%s" s nd morsel
          (if checked then "-checked" else "")
      in
      Engine.set_batched true;
      Engine.set_checked checked;
      Engine.Parallel.set_domains nd;
      Engine.Parallel.set_min_rows 1;
      Engine.Parallel.set_morsel_rows morsel;
      Fun.protect
        ~finally:(fun () ->
          Engine.set_batched true;
          Engine.set_checked false;
          Engine.Parallel.set_domains 1;
          Engine.Parallel.set_min_rows 128;
          Engine.Parallel.set_morsel_rows 1024)
        (fun () ->
          let plan = Engine.compile db atoms ~init:Mapping.empty in
          (match Analysis.Batch_audit.audit plan with
          | [] -> ()
          | ds ->
              fail
                (tag
                   ("audit-"
                   ^ String.concat "+"
                       (List.map
                          (fun d ->
                            Analysis.Diagnostic.code_id
                              d.Analysis.Diagnostic.code)
                          ds))));
          let resource = Analysis.Resource.of_plan plan in
          Engine.reset_batch_stats ();
          ignore (Engine.count_envs plan);
          Engine.iter_envs plan (fun _ -> ());
          let stats = Engine.batch_stats () in
          match Analysis.Batch_audit.check_envelope resource stats with
          | [] -> ()
          | ds ->
              fail
                (tag
                   ("envelope-"
                   ^ String.concat "+"
                       (List.map
                          (fun d ->
                            match d.Analysis.Diagnostic.witness with
                            | Some
                                (Analysis.Diagnostic.Envelope
                                   { component; certified; measured }) ->
                                Printf.sprintf "%s-%d>%d" component measured
                                  certified
                            | _ -> "E021")
                          ds)))))
    [ 1; 2 ];
  !failures

let batch_audit_diff_main count seed0 =
  let bad = ref 0 and checked = ref 0 and skipped = ref 0 in
  let seed = ref seed0 in
  while !checked < count do
    incr seed;
    let p, db = random_instance !seed in
    if not (opt_diff_feasible p db) then incr skipped
    else begin
      incr checked;
      let st = Random.State.make [| !seed; 0xa0d1 |] in
      match check_batch_audit_diff st p db with
      | [] -> ()
      | failures ->
          incr bad;
          Printf.printf "seed %d FAILED: %s\n%!" !seed
            (String.concat ", " failures)
    end
  done;
  Printf.printf
    "batch-audit-diff: %d instance(s) from seed %d (%d oversized skipped): \
     %d failure(s)\n"
    count seed0 !skipped !bad;
  exit (if !bad = 0 then 0 else 1)

(* ---- adaptive re-planning differential ----------------------------------- *)

(* One instance of the --drift-diff mode; see the header comment. *)
let check_drift_diff p db =
  let module I = Engine.Inspect in
  let module D = Analysis.Diagnostic in
  let failures = ref [] in
  let fail name = failures := name :: !failures in
  let codes ds = String.concat "+" (List.map (fun d -> D.code_id d.D.code) ds) in
  let with_adapt b f =
    let prev = Engine.adapt_enabled () in
    Engine.set_adapt b;
    Fun.protect ~finally:(fun () -> Engine.set_adapt prev) f
  in
  let q = Wdpt.Pattern_tree.q_full p in
  let atoms = Cq.Query.body q in
  let static_wdpt = with_adapt false (fun () -> Wdpt.Semantics.eval db p) in
  let static_cq = with_adapt false (fun () -> Cq.Eval.answers db q) in
  with_adapt true (fun () ->
      (* pass 1 collects counters (and may install a calibration); pass 2
         serves the re-planned plan — answers must never change *)
      for pass = 1 to 2 do
        if not (Mapping.Set.equal (Wdpt.Semantics.eval db p) static_wdpt) then
          fail (Printf.sprintf "wdpt-eval-adaptive-pass-%d" pass);
        if not (Mapping.Set.equal (Cq.Eval.answers db q) static_cq) then
          fail (Printf.sprintf "cq-eval-adaptive-pass-%d" pass)
      done);
  let adapted =
    with_adapt true (fun () -> Engine.compile db atoms ~init:Mapping.empty)
  in
  (* any calibration the adaptive passes installed must carry a certificate
     that re-verifies from the uncalibrated before-plan *)
  (match Engine.cached_swap adapted with
  | None -> ()
  | Some cert ->
      let before =
        with_adapt false (fun () -> Engine.compile db atoms ~init:Mapping.empty)
      in
      (match
         Analysis.Feedback.verify_swap ~before:(I.plan before)
           ~after:(I.plan adapted) cert
       with
      | [] -> ()
      | ds -> fail ("swap-cert-" ^ codes ds)));
  (* a genuine feedback view audits clean... *)
  ignore (with_adapt false (fun () -> Engine.count_envs adapted));
  (match Analysis.Feedback.audit adapted with
  | [] -> ()
  | ds -> fail ("genuine-view-" ^ codes ds));
  (* ...and a seeded drift injection into a corrupted copy is caught *)
  let v = I.feedback adapted in
  if Array.length v.I.f_atoms > 0 then begin
    let fa = v.I.f_atoms.(0) in
    let est = fa.I.f_score +. fa.I.f_calib in
    let surv =
      int_of_float (Float.min 1e8 (10. ** (est +. v.I.f_threshold +. 2.))) + 10
    in
    let atoms' = Array.copy v.I.f_atoms in
    atoms'.(0) <-
      { fa with
        I.f_contexts = 1;
        f_probed = max surv v.I.f_min_probed;
        f_survived = surv };
    let corrupt = { v with I.f_atoms = atoms'; f_runs = max 1 v.I.f_runs } in
    let ds = Analysis.Feedback.audit_view corrupt in
    if not (List.exists (fun d -> d.D.code = D.Drift) ds) then
      fail "drift-injection-not-caught"
  end;
  !failures

let drift_diff_main count seed0 =
  let bad = ref 0 and checked = ref 0 and skipped = ref 0 in
  let seed = ref seed0 in
  while !checked < count do
    incr seed;
    let p, db = random_instance !seed in
    if not (opt_diff_feasible p db) then incr skipped
    else begin
      incr checked;
      match check_drift_diff p db with
      | [] -> ()
      | failures ->
          incr bad;
          Printf.printf "seed %d FAILED: %s\n%!" !seed
            (String.concat ", " failures)
    end
  done;
  Printf.printf
    "drift-diff: %d instance(s) from seed %d (%d oversized skipped): %d \
     failure(s)\n"
    count seed0 !skipped !bad;
  (* machine-readable summary, same schema version as the analysis JSON *)
  Printf.printf
    "{\"schema\": %d, \"mode\": \"drift-diff\", \"instances\": %d, \
     \"seed\": %d, \"skipped\": %d, \"failures\": %d}\n"
    Analysis.Json.schema_version count seed0 !skipped !bad;
  exit (if !bad = 0 then 0 else 1)

let race_diff_main count seed0 =
  let bad = ref 0 and checked = ref 0 and skipped = ref 0 in
  let seed = ref seed0 in
  while !checked < count do
    incr seed;
    let p, db = random_instance !seed in
    if not (opt_diff_feasible p db) then incr skipped
    else begin
      incr checked;
      let st = Random.State.make [| !seed; 0x7ace |] in
      match check_race_diff st p db with
      | [] -> ()
      | failures ->
          incr bad;
          Printf.printf "seed %d FAILED: %s\n%!" !seed
            (String.concat ", " failures)
    end
  done;
  if not (check_fault_injection ()) then begin
    incr bad;
    Printf.printf "fault-injection NOT caught by the sanitizer\n%!"
  end;
  let stats = Engine.Parallel.race_stats () in
  Printf.printf
    "race-diff: %d instance(s) from seed %d (%d oversized skipped): %d \
     failure(s); %d region(s) validated, %d access record(s), %d race(s) \
     (the fault-injection race is expected)\n"
    count seed0 !skipped !bad stats.Engine.Parallel.rs_regions
    stats.Engine.Parallel.rs_events stats.Engine.Parallel.rs_races;
  exit (if !bad = 0 then 0 else 1)

let par_diff_main count seed0 =
  let bad = ref 0 and checked = ref 0 and skipped = ref 0 in
  let seed = ref seed0 in
  while !checked < count do
    incr seed;
    let p, db = random_instance !seed in
    if not (opt_diff_feasible p db) then incr skipped
    else begin
      incr checked;
      match check_par_diff p db with
      | [] -> ()
      | failures ->
          incr bad;
          Printf.printf "seed %d FAILED: %s\n%!" !seed
            (String.concat ", " failures)
    end
  done;
  Printf.printf
    "par-diff: %d instance(s) from seed %d (%d oversized skipped): %d failure(s)\n"
    count seed0 !skipped !bad;
  exit (if !bad = 0 then 0 else 1)

let opt_diff_main count seed0 =
  let bad = ref 0 and checked = ref 0 and skipped = ref 0 in
  let seed = ref seed0 in
  (* skip oversized draws but keep advancing the seed until COUNT instances
     have actually been checked, so the pinned CI run always covers the full
     count *)
  while !checked < count do
    incr seed;
    let p, db = random_instance !seed in
    if not (opt_diff_feasible p db) then incr skipped
    else begin
      incr checked;
      match check_opt_diff p db with
      | [] -> ()
      | failures ->
          incr bad;
          Printf.printf "seed %d FAILED: %s\n%!" !seed
            (String.concat ", " failures)
    end
  done;
  Printf.printf
    "opt-diff: %d instance(s) from seed %d (%d oversized skipped): %d failure(s)\n"
    count seed0 !skipped !bad;
  exit (if !bad = 0 then 0 else 1)

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "--opt-diff" then begin
    let count =
      if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 500
    in
    let seed0 =
      if Array.length Sys.argv > 3 then int_of_string Sys.argv.(3) else 42
    in
    opt_diff_main count seed0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "--par-diff" then begin
    let count =
      if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 400
    in
    let seed0 =
      if Array.length Sys.argv > 3 then int_of_string Sys.argv.(3) else 42
    in
    par_diff_main count seed0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "--batch-diff" then begin
    let count =
      if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 300
    in
    let seed0 =
      if Array.length Sys.argv > 3 then int_of_string Sys.argv.(3) else 42
    in
    batch_diff_main count seed0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "--delta-diff" then begin
    let count =
      if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 300
    in
    let seed0 =
      if Array.length Sys.argv > 3 then int_of_string Sys.argv.(3) else 42
    in
    delta_diff_main count seed0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "--batch-audit-diff" then begin
    let count =
      if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 300
    in
    let seed0 =
      if Array.length Sys.argv > 3 then int_of_string Sys.argv.(3) else 42
    in
    batch_audit_diff_main count seed0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "--race-diff" then begin
    let count =
      if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 300
    in
    let seed0 =
      if Array.length Sys.argv > 3 then int_of_string Sys.argv.(3) else 42
    in
    race_diff_main count seed0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "--drift-diff" then begin
    let count =
      if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 300
    in
    let seed0 =
      if Array.length Sys.argv > 3 then int_of_string Sys.argv.(3) else 42
    in
    drift_diff_main count seed0
  end;
  (* any other --flag is a mode we do not have: usage, exit 2 (a typo'd
     mode silently falling through to the time-based fuzzer would report
     green without running the intended differential) *)
  if
    Array.length Sys.argv > 1
    && String.length Sys.argv.(1) >= 2
    && String.sub Sys.argv.(1) 0 2 = "--"
  then begin
    Printf.eprintf
      "wdpt_fuzz: unknown mode %s\n\
       usage: wdpt_fuzz [SECONDS] [SEED]\n\
      \       wdpt_fuzz --opt-diff [COUNT] [SEED]\n\
      \       wdpt_fuzz --par-diff [COUNT] [SEED]\n\
      \       wdpt_fuzz --race-diff [COUNT] [SEED]\n\
      \       wdpt_fuzz --batch-diff [COUNT] [SEED]\n\
      \       wdpt_fuzz --batch-audit-diff [COUNT] [SEED]\n\
      \       wdpt_fuzz --drift-diff [COUNT] [SEED]\n\
      \       wdpt_fuzz --delta-diff [COUNT] [SEED]\n"
      Sys.argv.(1);
    exit 2
  end;
  let seconds =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 10.0
  in
  let t0 = Unix.gettimeofday () in
  let n = ref 0 and bad = ref 0 and skipped = ref 0 in
  let seed =
    ref
      (if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2)
       else int_of_float (Unix.time ()) land 0xFFFFFF)
  in
  while Unix.gettimeofday () -. t0 < seconds do
    incr seed;
    let p, db = random_instance !seed in
    if not (brute_force_feasible p db) then incr skipped
    else begin
      incr n;
      match check_instance p db with
      | [] -> ()
      | failures ->
          incr bad;
          Printf.printf "seed %d FAILED: %s\n%!" !seed
            (String.concat ", " failures)
    end
  done;
  Printf.printf "fuzzed %d instances in %.1fs (%d oversized skipped): %d failure(s)\n"
    !n seconds !skipped !bad;
  exit (if !bad = 0 then 0 else 1)
