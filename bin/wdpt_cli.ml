(* wdpt: command-line front end.

   Subcommands:
     eval        evaluate an {AND,OPT}-SPARQL query over a triple file
     watch       standing query: replay a change stream, print change sets
     classify    report fragment membership (Section 3 classes)
     approximate compute WB(k)-approximations (Section 5)
     check       well-designedness of a pattern
     lint        static analysis: structured diagnostics (text or JSON)

   Data files contain one "subject predicate object" triple per line
   ('#' comments); see Rdf.Graph. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let query_arg =
  let doc = "The query: either inline {AND,OPT}-SPARQL or a path to a file." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc)

let relational_arg =
  let doc =
    "Relational mode: the query uses the generic pattern-tree syntax \
     (free (x) { R(?x, ?y) } [ { S(?y) } ]) and the data file contains \
     ground atoms like R(1, foo)."
  in
  Arg.(value & flag & info [ "r"; "relational" ] ~doc)

(* load a pattern tree in either front-end syntax *)
let load_tree ~relational query =
  let src = if Sys.file_exists query then read_file query else query in
  if relational then Wdpt.Syntax.parse src
  else
    match Rdf.Sparql.parse src with
    | Error e -> Error ("query: " ^ e)
    | Ok q ->
        if Rdf.Sparql.is_well_designed q.Rdf.Sparql.where then
          Ok (Rdf.Sparql.to_pattern_tree q)
        else Error "query: pattern is not well-designed"

let load_db ~relational path =
  let doc = read_file path in
  if relational then Wdpt.Syntax.parse_database doc
  else
    match Rdf.Graph.of_string doc with
    | Error e -> Error ("data: " ^ e)
    | Ok g -> Ok (Rdf.Graph.database g)

let data_arg =
  let doc = "Triple data file (one 's p o' triple per line)." in
  Arg.(required & opt (some file) None & info [ "d"; "data" ] ~docv:"FILE" ~doc)

let k_arg =
  let doc = "Width bound k." in
  Arg.(value & opt int 1 & info [ "k" ] ~docv:"K" ~doc)

let width_arg =
  let doc = "Width notion: tw (treewidth) or hw (β-hypertreewidth)." in
  Arg.(value & opt (enum [ ("tw", Wdpt.Classes.Tw); ("hw", Wdpt.Classes.Hw') ]) Wdpt.Classes.Tw
       & info [ "w"; "width" ] ~docv:"WIDTH" ~doc)

let or_die = function
  | Ok v -> v
  | Error e ->
      prerr_endline e;
      exit 1

(* --domains / --min-rows: validated against the same bounds
   Engine.Parallel.set_domains / set_min_rows clamp to (an out-of-bounds
   value is an error here, not a silent clamp), then applied for the
   duration of the command. Unset flags leave the ambient configuration
   (WDPT_ENGINE_DOMAINS, default threshold) alone. *)
let domains_arg =
  let doc =
    "Domain pool size for parallel enumeration (1-64; 1 = sequential). \
     Overrides WDPT_ENGINE_DOMAINS."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let min_rows_arg =
  let doc =
    "Minimum top-level candidate rows before a parallel region is worth \
     spawning (>= 1; default 128)."
  in
  Arg.(value & opt (some int) None & info [ "min-rows" ] ~docv:"N" ~doc)

let morsel_rows_arg =
  let doc =
    "Morsel size: rows per parallel chunk and per batch group of the \
     vectorized interpreter (>= 1; default 1024). Overrides \
     WDPT_ENGINE_MORSEL."
  in
  Arg.(value & opt (some int) None & info [ "morsel-rows" ] ~docv:"N" ~doc)

let max_mem_arg =
  let doc =
    "Admission control: reject the command with exit code 3 when the \
     certified resource envelope of the compiled plan exceeds $(docv) \
     bytes. The envelope is the static peak-memory bound certified by the \
     batch-pipeline auditor (the $(b,resource:) block of $(b,explain))."
  in
  Arg.(value & opt (some int) None & info [ "max-mem" ] ~docv:"BYTES" ~doc)

let degrade_arg =
  let doc =
    "With $(b,--max-mem): instead of rejecting outright, degrade to the \
     scalar sequential interpreter (batch pipeline off, one domain) and \
     re-certify; exit 3 only if even the degraded envelope exceeds the \
     budget."
  in
  Arg.(value & flag & info [ "degrade" ] ~doc)

(* Exit code 3 is reserved for admission rejections, so scripts can tell
   "too expensive under --max-mem" from diagnostic findings (1/2). *)
let exit_admission_reject = 3

(* The gate certifies the full-tree plan: the widest CQ the evaluation
   compiles (per-node plans are plans of sub-bodies, so its envelope
   dominates theirs under the same configuration). *)
let admission_gate ~budget ~degrade db q =
  match budget with
  | None -> ()
  | Some budget ->
      let atoms = Cq.Query.body q in
      let plan = Engine.compile db atoms ~init:Relational.Mapping.empty in
      let r = Analysis.Resource.of_plan plan in
      if Analysis.Resource.admits r ~budget then ()
      else if degrade then begin
        Engine.set_batched false;
        Engine.Parallel.set_domains 1;
        let r = Analysis.Resource.of_plan plan in
        if Analysis.Resource.admits r ~budget then
          Format.eprintf
            "max-mem: degraded to scalar-sequential — certified peak %d \
             byte(s) within the %d-byte budget@."
            r.Analysis.Resource.r_peak_bytes budget
        else begin
          Format.eprintf
            "max-mem: rejected — even the scalar-sequential certified peak \
             (%d byte(s)%s) exceeds the %d-byte budget@."
            r.Analysis.Resource.r_peak_bytes
            (if r.Analysis.Resource.r_saturated then ", saturated" else "")
            budget;
          exit exit_admission_reject
        end
      end
      else begin
        Format.eprintf
          "max-mem: rejected — certified peak %d byte(s)%s exceeds the \
           %d-byte budget (use --degrade to fall back to \
           scalar-sequential)@."
          r.Analysis.Resource.r_peak_bytes
          (if r.Analysis.Resource.r_saturated then ", saturated" else "")
          budget;
        exit exit_admission_reject
      end

let apply_engine_config domains min_rows morsel_rows =
  (match domains with
  | Some n when n < 1 || n > 64 ->
      or_die
        (Error (Printf.sprintf "--domains %d: pool size must be within 1..64" n))
  | Some n -> Engine.Parallel.set_domains n
  | None -> ());
  (match min_rows with
  | Some n when n < 1 ->
      or_die (Error (Printf.sprintf "--min-rows %d: threshold must be >= 1" n))
  | Some n -> Engine.Parallel.set_min_rows n
  | None -> ());
  match morsel_rows with
  | Some n when n < 1 ->
      or_die
        (Error (Printf.sprintf "--morsel-rows %d: morsel size must be >= 1" n))
  | Some n -> Engine.Parallel.set_morsel_rows n
  | None -> ()

let eval_cmd =
  let run query data maximal relational limit offset domains min_rows
      morsel_rows max_mem degrade adapt =
    apply_engine_config domains min_rows morsel_rows;
    if adapt then Engine.set_adapt true;
    let p = or_die (load_tree ~relational query) in
    let db = or_die (load_db ~relational data) in
    admission_gate ~budget:max_mem ~degrade db (Wdpt.Pattern_tree.q_full p);
    let print_answer h = Format.printf "%a@." Relational.Mapping.pp h in
    if limit = None && offset = 0 then begin
      (* exact answer set, cardinality first *)
      let ans =
        if maximal then Wdpt.Semantics.eval_max db p
        else Wdpt.Semantics.eval db p
      in
      Format.printf "%d answer(s)@." (Relational.Mapping.Set.cardinal ans);
      List.iter print_answer (Relational.Mapping.Set.elements ans)
    end
    else if (not maximal) && Wdpt.Pattern_tree.node_count p = 1 then begin
      (* a single-node tree is a plain projection of its root body, so the
         page streams straight off the enumeration (first-seen order) and
         stops as soon as it is full — nothing is materialized *)
      let q = Wdpt.Pattern_tree.q_full p in
      let shown =
        Engine.stream_projections db (Cq.Query.body q)
          ~init:Relational.Mapping.empty ~onto:(Cq.Query.head q) ~offset ~limit
          print_answer
      in
      Format.printf "%d answer(s) shown, offset %d (streamed)@." shown offset
    end
    else if not maximal then begin
      (* tree-shaped (OPT) queries stream too: every hom the procedural
         enumeration yields is already maximal, so its projection is an
         answer on first sight — the page short-circuits with a buffer
         bounded by offset+limit instead of materializing the answer set *)
      let shown = Wdpt.Semantics.stream_eval db p ~offset ~limit print_answer in
      Format.printf "%d answer(s) shown, offset %d (streamed)@." shown offset
    end
    else begin
      (* maximal semantics needs the full answer set; page the sorted
         elements *)
      let ans = Wdpt.Semantics.eval_max db p in
      let total = Relational.Mapping.Set.cardinal ans in
      let shown = ref 0 in
      (try
         List.iteri
           (fun i h ->
             if i >= offset then begin
               (match limit with
               | Some l when !shown >= l -> raise Exit
               | _ -> ());
               print_answer h;
               incr shown
             end)
           (Relational.Mapping.Set.elements ans)
       with Exit -> ());
      Format.printf "%d of %d answer(s) shown, offset %d@." !shown total offset
    end
  in
  let maximal =
    Arg.(value & flag & info [ "m"; "maximal" ] ~doc:"Maximal-mappings semantics (Section 3.4).")
  in
  let limit =
    Arg.(value & opt (some int) None
         & info [ "limit" ] ~docv:"N"
             ~doc:"Print at most $(docv) answers. Under eval semantics the \
                   page is streamed — single-node queries off the engine's \
                   projection stream, tree-shaped (OPT) queries off the \
                   procedural enumeration, whose homs are maximal on first \
                   sight — so enumeration short-circuits as soon as the page \
                   is full instead of materializing the answer set (answers \
                   arrive in first-seen order). Only --maximal materializes.")
  in
  let offset =
    Arg.(value & opt int 0
         & info [ "offset" ] ~docv:"N"
             ~doc:"Skip the first $(docv) answers of the page.")
  in
  let adapt =
    Arg.(value & flag
         & info [ "adapt" ]
             ~doc:"Enable verified adaptive re-planning for this command \
                   (same as WDPT_ENGINE_ADAPT=1): after a run whose \
                   cardinality counters show estimate drift, the plan is \
                   recalibrated and re-ordered under an independently \
                   re-verified swap certificate.")
  in
  Cmd.v
    (Cmd.info "eval"
       ~doc:"Evaluate a well-designed query ({AND,OPT}-SPARQL, or pattern-tree syntax with -r).")
    Term.(const run $ query_arg $ data_arg $ maximal $ relational_arg $ limit
          $ offset $ domains_arg $ min_rows_arg $ morsel_rows_arg
          $ max_mem_arg $ degrade_arg $ adapt)

(* shared by watch, lint and explain; the lint -j flag stays as an alias *)
let format_arg =
  let doc = "Output format: $(b,text) or $(b,json). The JSON diagnostic \
             schema (codes, spans, witnesses, fixes) is documented in the \
             README." in
  Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
       & info [ "format" ] ~docv:"FORMAT" ~doc)

(* -- watch: standing query over a replayed fact stream ------------------- *)

(* Batch files: one change per line, '+' to insert and '-' to delete, the
   fact in the data syntax of the active mode ('R(1, foo)' with -r, 's p o'
   triples otherwise). A blank line or '---' closes the batch; '#' starts a
   comment. Each closed batch is applied as one Database.add/remove window
   and refreshed as one delta. *)
let parse_batches ~relational path =
  let parse_fact lineno body =
    let r =
      if relational then Wdpt.Syntax.parse_fact body
      else Result.map Rdf.Triple.to_fact (Rdf.Graph.triple_of_line body)
    in
    match r with
    | Ok f -> f
    | Error e -> or_die (Error (Printf.sprintf "%s:%d: %s" path lineno e))
  in
  let batches = ref [] and current = ref [] in
  let close () =
    if !current <> [] then begin
      batches := List.rev !current :: !batches;
      current := []
    end
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      let line = String.trim line in
      if line = "" || line = "---" then close ()
      else
        let body () = String.trim (String.sub line 1 (String.length line - 1)) in
        match line.[0] with
        | '+' -> current := `Add (parse_fact lineno (body ())) :: !current
        | '-' -> current := `Remove (parse_fact lineno (body ())) :: !current
        | _ ->
            or_die
              (Error
                 (Printf.sprintf
                    "%s:%d: expected '+fact', '-fact', '---' or a blank line"
                    path lineno)))
    (String.split_on_char '\n' (read_file path));
  close ();
  List.rev !batches

let value_json v =
  match v with
  | Relational.Value.Int n -> Analysis.Json.Int n
  | Relational.Value.Str s -> Analysis.Json.Str s

let mapping_json h =
  Analysis.Json.Obj
    (List.map (fun (x, v) -> (x, value_json v)) (Relational.Mapping.bindings h))

let event_json (e : Wdpt.Standing.event) =
  let open Analysis.Json in
  match e with
  | Added { answer; maximal } ->
      Obj
        [ ("kind", Str "added");
          ("answer", mapping_json answer);
          ("maximal", Bool maximal) ]
  | Removed { answer; was_maximal } ->
      Obj
        [ ("kind", Str "removed");
          ("answer", mapping_json answer);
          ("was-maximal", Bool was_maximal) ]
  | Promoted answer -> Obj [ ("kind", Str "promoted"); ("answer", mapping_json answer) ]
  | Demoted answer -> Obj [ ("kind", Str "demoted"); ("answer", mapping_json answer) ]

let watch_cmd =
  let run query data batches_path relational format audit =
    let p = or_die (load_tree ~relational query) in
    let db =
      match data with
      | Some path -> or_die (load_db ~relational path)
      | None -> Relational.Database.create ()
    in
    let batches = parse_batches ~relational batches_path in
    let st = Wdpt.Standing.register db p in
    let counts () =
      ( Relational.Mapping.Set.cardinal (Wdpt.Standing.answers st),
        Relational.Mapping.Set.cardinal (Wdpt.Standing.maximal_answers st) )
    in
    let emit_json fields =
      Format.printf "%a@." Analysis.Json.pp
        (Analysis.Json.Obj (("schema", Analysis.Json.Int 1) :: fields))
    in
    let n0, m0 = counts () in
    (match format with
    | `Json ->
        emit_json
          [ ("registered", Analysis.Json.Bool true);
            ("version", Analysis.Json.Int (Wdpt.Standing.version st));
            ("answers", Analysis.Json.Int n0);
            ("maximal", Analysis.Json.Int m0) ]
    | `Text ->
        Format.printf "registered: %d answer(s), %d maximal, version %d@." n0
          m0 (Wdpt.Standing.version st));
    let audit_failures = ref 0 in
    List.iteri
      (fun i ops ->
        List.iter
          (fun op ->
            match op with
            | `Add f -> Relational.Database.add db f
            | `Remove f -> Relational.Database.remove db f)
          ops;
        let evs = Wdpt.Standing.refresh st in
        let s = Wdpt.Standing.stats st in
        let ds = if audit then Analysis.Delta_audit.audit st else [] in
        if ds <> [] then incr audit_failures;
        let n, m = counts () in
        match format with
        | `Json ->
            emit_json
              ([ ("batch", Analysis.Json.Int (i + 1));
                 ("version", Analysis.Json.Int (Wdpt.Standing.version st));
                 ("added", Analysis.Json.Int s.Wdpt.Standing.last_batch_added);
                 ("removed", Analysis.Json.Int s.Wdpt.Standing.last_batch_removed);
                 ("dirty", Analysis.Json.Int s.Wdpt.Standing.last_dirty);
                 ("recomputed", Analysis.Json.Int s.Wdpt.Standing.last_recomputed);
                 ("events", Analysis.Json.List (List.map event_json evs));
                 ("answers", Analysis.Json.Int n);
                 ("maximal", Analysis.Json.Int m) ]
              @
              if audit then
                [ ("audit", Analysis.Diagnostic.report_json ds) ]
              else [])
        | `Text ->
            Format.printf "batch %d: +%d -%d, %d dirty, %d recomputed -> %d event(s), %d answer(s), %d maximal@."
              (i + 1) s.Wdpt.Standing.last_batch_added
              s.Wdpt.Standing.last_batch_removed s.Wdpt.Standing.last_dirty
              s.Wdpt.Standing.last_recomputed (List.length evs) n m;
            List.iter
              (fun (e : Wdpt.Standing.event) ->
                match e with
                | Added { answer; maximal } ->
                    Format.printf "  + %a%s@." Relational.Mapping.pp answer
                      (if maximal then " (maximal)" else "")
                | Removed { answer; was_maximal } ->
                    Format.printf "  - %a%s@." Relational.Mapping.pp answer
                      (if was_maximal then " (was maximal)" else "")
                | Promoted a ->
                    Format.printf "  promoted %a@." Relational.Mapping.pp a
                | Demoted a ->
                    Format.printf "  demoted %a@." Relational.Mapping.pp a)
              evs;
            List.iter (Format.printf "  %a@." Analysis.Diagnostic.pp) ds)
      batches;
    if !audit_failures > 0 then exit 2
  in
  let data_opt =
    Arg.(value & opt (some file) None
         & info [ "d"; "data" ] ~docv:"FILE"
             ~doc:"Initial data to register against; defaults to an empty \
                   database.")
  in
  let batches_arg =
    let doc =
      "Change stream to replay: lines '+FACT' (insert) and '-FACT' (delete), \
       batches separated by blank lines or '---', '#' comments. Facts use \
       the data syntax of the active mode."
    in
    Arg.(required & pos 1 (some file) None & info [] ~docv:"BATCHES" ~doc)
  in
  let audit_arg =
    Arg.(value & flag
         & info [ "audit" ]
             ~doc:"After every refresh, run the delta-maintenance auditor \
                   (E027-E030) over the standing view and report its \
                   findings; exit 2 if any batch fails.")
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:"Register the query as a standing view and replay a change \
             stream against it, printing the answer change set (added / \
             removed / promoted / demoted events) after every batch instead \
             of re-evaluating from scratch. With --format json, one \
             schema-tagged JSON document per batch.")
    Term.(const run $ query_arg $ data_opt $ batches_arg $ relational_arg
          $ format_arg $ audit_arg)

let classify_cmd =
  let run query k relational =
    let p = or_die (load_tree ~relational query) in
    Format.printf "well-designed:        true@.";
    Format.printf "nodes:                %d@." (Wdpt.Pattern_tree.node_count p);
    Format.printf "size (atoms):         %d@." (Wdpt.Pattern_tree.size p);
    Format.printf "projection-free:      %b@." (Wdpt.Pattern_tree.is_projection_free p);
    Format.printf "interface (least c):  %d@." (Wdpt.Classes.interface p);
    Format.printf "locally in TW(%d):     %b@." k (Wdpt.Classes.locally_in ~width:Tw ~k p);
    Format.printf "locally in HW(%d):     %b@." k (Wdpt.Classes.locally_in ~width:Hw ~k p);
    Format.printf "globally in TW(%d):    %b@." k (Wdpt.Classes.globally_in ~width:Tw ~k p);
    Format.printf "globally in HW(%d):    %b@." k (Wdpt.Classes.globally_in ~width:Hw ~k p);
    Format.printf "in WB(%d) [g-TW]:      %b@." k (Wdpt.Classes.in_wb ~width:Tw ~k p);
    let q_full = Wdpt.Pattern_tree.q_full p in
    Format.printf "full-tree treewidth:  %d@." (Cq.Query.treewidth q_full)
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Fragment membership per Section 3 of the paper.")
    Term.(const run $ query_arg $ k_arg $ relational_arg)

let approximate_cmd =
  let run query k width relational =
    let p = or_die (load_tree ~relational query) in
    let print_tree a =
      if relational then Format.printf "%a@." Wdpt.Pattern_tree.pp a
      else Format.printf "%a@." Rdf.Sparql.pp_query (Rdf.Sparql.of_pattern_tree a)
    in
    if Wdpt.Classes.in_wb ~width ~k p then
      Format.printf "query already in WB(%d); it is its own approximation@." k
    else begin
      let apps = Wdpt.Approximation.wb_approximations ~width ~k p in
      Format.printf "%d WB(%d)-approximation(s)@." (List.length apps) k;
      List.iter print_tree apps
    end
  in
  Cmd.v
    (Cmd.info "approximate" ~doc:"WB(k)-approximations (Section 5.2).")
    Term.(const run $ query_arg $ k_arg $ width_arg $ relational_arg)

let optimize_cmd =
  let run query k relational data =
    let p = or_die (load_tree ~relational query) in
    let db =
      Option.map (fun path -> or_die (load_db ~relational path)) data
    in
    let pl = Wdpt.Optimizer.plan ?db ~k p in
    Format.printf "plan: %s@." (Wdpt.Optimizer.describe pl);
    match db with
    | None -> ()
    | Some db ->
        let ans = Wdpt.Optimizer.eval pl db in
        Format.printf "%d answer(s)%s@."
          (Relational.Mapping.Set.cardinal ans)
          (if Wdpt.Optimizer.complete pl then ""
           else " (sound approximation: a subset of the exact answers)");
        List.iter
          (fun h -> Format.printf "%a@." Relational.Mapping.pp h)
          (Relational.Mapping.Set.elements ans)
  in
  let data_opt =
    Arg.(value & opt (some file) None
         & info [ "d"; "data" ] ~docv:"FILE" ~doc:"Optional data to evaluate through the plan.")
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Pick an evaluation strategy (Sections 3-5) and optionally run it.")
    Term.(const run $ query_arg $ k_arg $ relational_arg $ data_opt)

let union_cmd =
  let run query k data =
    let src = if Sys.file_exists query then read_file query else query in
    let u = or_die (Wdpt.Syntax.parse_union src) in
    Format.printf "union of %d WDPT(s)@." (List.length u);
    Format.printf "in M(UWB(%d)) [Theorem 17]: %b@." k
      (Wdpt.Union.in_m_uwb ~width:Tw ~k u);
    (match Wdpt.Union.uwb_witness ~width:Tw ~k u with
    | Some w ->
        Format.printf "equivalent UWB(%d) union (%d disjuncts):@." k (List.length w);
        List.iter (fun p -> Format.printf "  %a@." Wdpt.Pattern_tree.pp p) w
    | None ->
        let app = Wdpt.Union.uwb_approximation ~width:Tw ~k u in
        Format.printf "UWB(%d)-approximation [Theorem 18] (%d disjuncts):@." k
          (List.length app);
        List.iter (fun p -> Format.printf "  %a@." Wdpt.Pattern_tree.pp p) app);
    match data with
    | None -> ()
    | Some path ->
        let db = or_die (load_db ~relational:true path) in
        let ans = Wdpt.Union.eval db u in
        Format.printf "%d answer(s)@." (Relational.Mapping.Set.cardinal ans);
        List.iter
          (fun h -> Format.printf "%a@." Relational.Mapping.pp h)
          (Relational.Mapping.Set.elements ans)
  in
  let data_opt =
    Arg.(value & opt (some file) None
         & info [ "d"; "data" ] ~docv:"FILE" ~doc:"Optional facts file to evaluate over.")
  in
  Cmd.v
    (Cmd.info "union"
       ~doc:"Unions of WDPTs (Section 6): membership, witness/approximation, evaluation. \
             Query syntax: pattern-tree disjuncts separated by UNION.")
    Term.(const run $ query_arg $ k_arg $ data_opt)

(* lint and check share the analyzer front end *)
let lint_source ~relational query =
  let src = if Sys.file_exists query then read_file query else query in
  if relational then Analysis.Lint.lint_relational src
  else Analysis.Lint.lint_sparql src

let json_arg =
  Arg.(value & flag
       & info [ "j"; "json" ] ~doc:"Emit the diagnostics as a JSON report (same as --format json).")

let lint_cmd =
  let run query json format relational =
    let json = json || format = `Json in
    let ds = lint_source ~relational query in
    if json then
      Format.printf "%a@." Analysis.Json.pp (Analysis.Diagnostic.report_json ds)
    else if ds = [] then Format.printf "no findings@."
    else List.iter (Format.printf "%a@." Analysis.Diagnostic.pp) ds;
    exit (Analysis.Diagnostic.exit_code ds)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Static analysis: well-designedness witnesses, unsafe free \
             variables, unsatisfiable nodes, redundant atoms, cartesian \
             products, dead OPT branches, class membership. Exit code 0 = \
             clean (hints only), 1 = warnings, 2 = errors.")
    Term.(const run $ query_arg $ json_arg $ format_arg $ relational_arg)

(* With the sanitizer on, explain exercises it for real: one parallel count
   over the plan under the current pool configuration, reporting the stats
   delta. With it off (or a sequential decision) there is nothing to
   observe, and the report says so. *)
let race_report plan =
  if not (Engine.Parallel.race_check_enabled ()) then None
  else begin
    let before = Engine.Parallel.race_stats () in
    let verdict =
      try
        ignore (Engine.count_envs plan);
        "clean"
      with Engine.Race_failure _ -> "race"
    in
    let after = Engine.Parallel.race_stats () in
    Some
      ( after.Engine.Parallel.rs_regions - before.Engine.Parallel.rs_regions,
        after.Engine.Parallel.rs_events - before.Engine.Parallel.rs_events,
        after.Engine.Parallel.rs_races - before.Engine.Parallel.rs_races,
        verdict )
  end

let race_json report =
  match report with
  | None -> Analysis.Json.Obj [ ("enabled", Analysis.Json.Bool false) ]
  | Some (regions, events, races, verdict) ->
      Analysis.Json.Obj
        [ ("enabled", Analysis.Json.Bool true);
          ("regions", Int regions);
          ("events", Int events);
          ("races", Int races);
          ("verdict", Str verdict) ]

let explain_cmd =
  let run query data format relational opt domains min_rows morsel_rows
      max_mem adapt drift =
    apply_engine_config domains min_rows morsel_rows;
    if adapt then Engine.set_adapt true;
    let lint_ds = lint_source ~relational query in
    let fatal =
      List.exists
        (fun d -> d.Analysis.Diagnostic.severity = Analysis.Diagnostic.Error)
        lint_ds
    in
    if fatal then begin
      (* the query does not compile to a plan: report like lint and stop *)
      (if format = `Json then
         Format.printf "%a@." Analysis.Json.pp
           (Analysis.Diagnostic.report_json lint_ds)
       else List.iter (Format.printf "%a@." Analysis.Diagnostic.pp) lint_ds);
      exit (Analysis.Diagnostic.exit_code lint_ds)
    end;
    let p = or_die (load_tree ~relational query) in
    let q = Wdpt.Pattern_tree.q_full p in
    let db =
      match data with
      | Some path -> or_die (load_db ~relational path)
      | None ->
          (* no data given: explain against the canonical database of the
             full-tree query, which the plan matches by construction *)
          fst (Cq.Query.freeze q)
    in
    let atoms = Cq.Query.body q in
    let plan = Engine.compile db atoms ~init:Relational.Mapping.empty in
    (* --opt forces the pass pipeline even when WDPT_ENGINE_OPT=0 disabled it
       at compile time (Engine.optimize is a no-op on optimized plans) *)
    let plan = if opt then Engine.optimize plan else plan in
    let view = Engine.Inspect.plan plan in
    let audit_ds = Analysis.Plan_audit.audit_view view in
    let equiv = if opt then Some (Analysis.Equiv.verify_trail plan) else None in
    let dataflow = if opt then Some (Analysis.Dataflow.analyze view) else None in
    let equiv_ds =
      match equiv with None -> [] | Some r -> Analysis.Equiv.diagnostics r
    in
    let pview = Engine.Inspect.par plan in
    let bview = Engine.Inspect.batch plan in
    let par_ds = Analysis.Par_audit.audit_view pview in
    let batch_ds = Analysis.Batch_audit.audit_view view bview in
    let resource = Analysis.Resource.analyze view pview bview in
    let admitted =
      Option.map
        (fun budget -> Analysis.Resource.admits resource ~budget)
        max_mem
    in
    (* --drift: one counting evaluation over the plan collects the genuine
       per-atom counters; the feedback view, its audit and (under --adapt /
       WDPT_ENGINE_ADAPT) the re-plan certificate verdict are reported.
       E022 findings are warnings, so a drift-y query exits 1, not 2. *)
    let feedback =
      if not drift then None
      else begin
        ignore (Engine.count_envs plan);
        let fview = Engine.Inspect.feedback plan in
        let fds = Analysis.Feedback.audit plan in
        let swap =
          if not (Engine.adapt_enabled ()) then None
          else
            match Engine.replan plan with
            | None -> None
            | Some (swapped, cert) ->
                let _, sds =
                  Analysis.Feedback.accept_swap ~before:plan ~after:swapped
                    cert
                in
                Some (cert, sds)
        in
        Some (fview, fds, swap)
      end
    in
    let feedback_ds =
      match feedback with
      | None -> []
      | Some (_, fds, swap) ->
          fds @ (match swap with Some (_, sds) -> sds | None -> [])
    in
    let ds = lint_ds @ audit_ds @ equiv_ds @ par_ds @ batch_ds @ feedback_ds in
    let exit_code =
      match admitted with
      | Some false -> exit_admission_reject
      | _ -> Analysis.Diagnostic.exit_code ds
    in
    let resource_json =
      let base =
        match Analysis.Resource.to_json resource with
        | Analysis.Json.Obj fields -> fields
        | j -> [ ("envelope", j) ]
      in
      Analysis.Json.Obj
        (base
        @
        match (max_mem, admitted) with
        | Some budget, Some ok ->
            [ ("budget", Analysis.Json.Int budget);
              ("admitted", Analysis.Json.Bool ok) ]
        | _ -> [])
    in
    let cost = Analysis.Cost.analyze db atoms ~free:(Wdpt.Pattern_tree.free p) in
    let partition = Engine.Parallel.decision plan in
    let race = race_report plan in
    let feedback_json =
      match feedback with
      | None -> Analysis.Json.Obj [ ("enabled", Analysis.Json.Bool false) ]
      | Some (fview, fds, swap) ->
          Analysis.Json.Obj
            [ ("enabled", Analysis.Json.Bool true);
              ("view", Analysis.Feedback.view_json fview);
              ("audit", Analysis.Diagnostic.report_json fds);
              ( "swap",
                match swap with
                | None ->
                    Analysis.Json.Obj
                      [ ("replanned", Analysis.Json.Bool false) ]
                | Some (cert, sds) ->
                    Analysis.Json.Obj
                      [ ("replanned", Analysis.Json.Bool true);
                        ("verified", Analysis.Json.Bool (sds = []));
                        ("epoch", Analysis.Json.Int cert.Engine.sw_epoch);
                        ("runs", Analysis.Json.Int cert.Engine.sw_runs);
                        ( "drifted-atoms",
                          Analysis.Json.Int (Array.length cert.Engine.sw_drift)
                        );
                        ("audit", Analysis.Diagnostic.report_json sds) ] ) ]
    in
    let tree_growth = Analysis.Cost.tree_growth p in
    (match format with
    | `Json ->
        let tree_json =
          Analysis.Json.Obj
            (("growth", Analysis.Cost.growth_json tree_growth)
            ::
            (match Analysis.Cost.tree_class p with
            | Some (k, c) ->
                [ ("local-tw", Analysis.Json.Int k); ("interface", Int c) ]
            | None -> []))
        in
        let opt_fields =
          match (equiv, dataflow) with
          | Some r, Some df ->
              [ ("optimization", Analysis.Equiv.report_json r);
                ("dataflow", Analysis.Dataflow.to_json df) ]
          | _ -> []
        in
        Format.printf "%a@." Analysis.Json.pp
          (Analysis.Json.Obj
             ([ ("schema", Analysis.Json.Int Analysis.Json.schema_version);
                ("version", Analysis.Json.Int 1);
                ("plan", Analysis.Plan_audit.view_json view);
                ("audit", Analysis.Diagnostic.report_json ds) ]
             @ opt_fields
             @ [ ("cost", Analysis.Cost.to_json cost);
                 ("parallel", Analysis.Cost.parallel_json partition);
                 ("par_audit", Analysis.Par_audit.par_json pview);
                 ("batch", Analysis.Par_audit.batch_json bview);
                 ("batch_audit", Analysis.Diagnostic.report_json batch_ds);
                 ("resource", resource_json);
                 ("race", race_json race);
                 ("feedback", feedback_json);
                 ("tree", tree_json);
                 ("exit-code", Analysis.Json.Int exit_code) ]))
    | `Text ->
        Format.printf "@[<v>plan:@,%a@]@." Analysis.Plan_audit.pp_view view;
        if ds = [] then Format.printf "audit: clean@."
        else begin
          Format.printf "audit:@.";
          List.iter (Format.printf "  %a@." Analysis.Diagnostic.pp) ds
        end;
        (match equiv with
        | Some r ->
            Format.printf "@[<v>optimization:@,%a@]@." Analysis.Equiv.pp_report r
        | None -> ());
        (match dataflow with
        | Some df ->
            Format.printf "@[<v>dataflow:@,%a@]@." Analysis.Dataflow.pp df
        | None -> ());
        Format.printf "@[<v>cost:@,%a@]@." Analysis.Cost.pp cost;
        Format.printf "@[<v>%a@]@." Analysis.Cost.pp_parallel partition;
        Format.printf "@[<v>par-audit:@,%a@]@." Analysis.Par_audit.pp_par pview;
        Format.printf "@[<v>%a@]@." Analysis.Par_audit.pp_batch bview;
        (if batch_ds = [] then Format.printf "batch-audit: clean@."
         else begin
           Format.printf "batch-audit:@.";
           List.iter (Format.printf "  %a@." Analysis.Diagnostic.pp) batch_ds
         end);
        Format.printf "@[<v>resource:@,%a@]@." Analysis.Resource.pp resource;
        (match (max_mem, admitted) with
        | Some budget, Some ok ->
            Format.printf
              "admission: %s — certified peak %d byte(s), budget %d byte(s)@."
              (if ok then "admit" else "reject (exit 3)")
              resource.Analysis.Resource.r_peak_bytes budget
        | _ -> ());
        (match race with
        | None -> Format.printf "race sanitizer: off@."
        | Some (regions, events, races, verdict) ->
            Format.printf
              "race sanitizer: on — %d region(s), %d event(s), %d race(s): %s@."
              regions events races verdict);
        (match feedback with
        | None -> ()
        | Some (fview, fds, swap) ->
            Format.printf "@[<v>%a@]@." Analysis.Feedback.pp_view fview;
            Format.printf "@[<v>%a@]@." Analysis.Feedback.pp_report fds;
            (match swap with
            | None ->
                Format.printf
                  "adaptive: no re-plan (%s)@."
                  (if Engine.adapt_enabled () then
                     "drift below threshold or insufficient evidence"
                   else "adapt off — use --adapt or WDPT_ENGINE_ADAPT=1")
            | Some (cert, sds) ->
                Format.printf
                  "adaptive: re-planned at epoch %d over %d run(s), %d \
                   drifted atom(s) — certificate %s@."
                  cert.Engine.sw_epoch cert.Engine.sw_runs
                  (Array.length cert.Engine.sw_drift)
                  (if sds = [] then "verified" else "REJECTED (E025)")));
        Format.printf "tree: %a%s@." Analysis.Cost.pp_growth tree_growth
          (match Analysis.Cost.tree_class p with
          | Some (k, c) ->
              Printf.sprintf " (locally TW(%d), interface %d)" k c
          | None -> ""));
    exit exit_code
  in
  let data_opt =
    Arg.(value & opt (some file) None
         & info [ "d"; "data" ] ~docv:"FILE"
             ~doc:"Data to compile against; defaults to the query's canonical \
                   database.")
  in
  let opt_arg =
    Arg.(value & flag
         & info [ "opt" ]
             ~doc:"Run the optimization pass pipeline, verify every pass \
                   certificate (translation validation, E007-E010) and print \
                   the pass trail plus the dataflow summary of the optimized \
                   plan.")
  in
  let adapt_arg =
    Arg.(value & flag
         & info [ "adapt" ]
             ~doc:"Enable verified adaptive re-planning for this command \
                   (same as WDPT_ENGINE_ADAPT=1). With $(b,--drift), a \
                   confirmed estimate drift re-plans the query and the swap \
                   certificate is independently re-verified by the feedback \
                   auditor (a rejected certificate is E025).")
  in
  let drift_arg =
    Arg.(value & flag
         & info [ "drift" ]
             ~doc:"Run one counting evaluation over the plan to collect \
                   per-atom cardinality feedback, then print the \
                   estimate-vs-actual selectivity table and the feedback \
                   audit verdict (E022-E026); in JSON the report lands under \
                   the schema-stable $(b,feedback) key. Estimate-drift \
                   findings (E022) are warnings: exit 1, not 2.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Compile the query and print the engine plan, the static audit \
             verdict (E-series diagnostics over the IR) and width-based cost \
             bounds. With $(b,--opt), also the optimization pass trail with \
             per-pass translation-validation verdicts and the dataflow \
             summary. Also audits the parallel execution plan (E011-E016), \
             reports the batched-execution decision (stage pipeline, \
             columnar layout, morsel geometry) and, when WDPT_ENGINE_TSAN=1, \
             runs the data-race sanitizer over one parallel count. Also \
             audits the batched layout (E017-E020) and certifies a resource \
             envelope for admission control ($(b,--max-mem)). With \
             $(b,--drift), collects runtime cardinality feedback and audits \
             it (E022-E026); with $(b,--adapt) a confirmed drift re-plans \
             under an independently verified certificate. Exit codes \
             match $(b,lint): 0 = clean, 1 = warnings, 2 = errors; 3 = \
             rejected by $(b,--max-mem).")
    Term.(const run $ query_arg $ data_opt $ format_arg $ relational_arg
          $ opt_arg $ domains_arg $ min_rows_arg $ morsel_rows_arg
          $ max_mem_arg $ adapt_arg $ drift_arg)

let check_cmd =
  let run query relational =
    let errors =
      List.filter
        (fun d -> d.Analysis.Diagnostic.severity = Analysis.Diagnostic.Error)
        (lint_source ~relational query)
    in
    if errors = [] then begin
      let p = or_die (load_tree ~relational query) in
      Format.printf "well-designed: true@.%a@." Wdpt.Pattern_tree.pp p;
      exit 0
    end
    else begin
      Format.printf "well-designed: false@.";
      List.iter (Format.printf "%a@." Analysis.Diagnostic.pp) errors;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Check well-designedness and show the pattern tree; failures name \
             the violating variable and nodes (see also $(b,lint)).")
    Term.(const run $ query_arg $ relational_arg)

let () =
  let info =
    Cmd.info "wdpt" ~version:"1.0.0"
      ~doc:"Well-designed pattern trees: evaluation, classification, approximation."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ eval_cmd;
            watch_cmd;
            classify_cmd;
            approximate_cmd;
            optimize_cmd;
            union_cmd;
            check_cmd;
            lint_cmd;
            explain_cmd ]))
